#include "fabric/device.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/snapshot.hpp"

namespace pentimento::fabric {

namespace {

constexpr ElementActivity kUnusedActivity{};

} // namespace

Device::Device(DeviceConfig config) : config_(std::move(config))
{
    if (config_.tiles_x == 0 || config_.tiles_y == 0 ||
        config_.nodes_per_tile == 0) {
        util::fatal("Device: empty fabric grid");
    }
    if (config_.routing_pitch_ps <= 0.0 || config_.carry_pitch_ps <= 0.0) {
        util::fatal("Device: non-positive element pitch");
    }
    fresh_scale_ =
        config_.age_model.freshStressScale(config_.service_age_h);
}

RoutingElement
Device::makeElement(ResourceId id) const
{
    // Variation must be a pure function of (device seed, resource id)
    // so that materialisation order is irrelevant and the same board
    // rented twice presents identical silicon.
    util::Rng stream = util::Rng(config_.seed).split(id.key());
    phys::VariationSampler sampler(config_.variation, stream);
    const phys::ElementVariation var = sampler.sample();
    double pitch = config_.routing_pitch_ps;
    double coupling = 1.0;
    switch (id.type) {
      case ResourceType::CarryElement:
        pitch = config_.carry_pitch_ps;
        break;
      case ResourceType::Lut:
        pitch = config_.lut_pitch_ps;
        coupling = config_.lut_bti_coupling;
        break;
      default:
        break;
    }
    return RoutingElement(id, pitch, pitch, var,
                          fresh_scale_ * coupling);
}

BramBlock
Device::makeBramBlock(ResourceId id) const
{
    // Retention is a pure function of (device seed, block id) — same
    // discipline as process variation, so materialisation order and
    // worker count are irrelevant. The "bram" tag keeps the stream
    // disjoint from the variation stream of a routing element that
    // happens to share the packed key space.
    util::Rng stream =
        util::Rng(config_.seed).split("bram").split(id.key());
    BramBlock block;
    block.id_ = id;
    block.retention_limit_h =
        stream.lognormal(std::log(config_.bram_retention_median_h),
                         config_.bram_retention_sigma);
    return block;
}

void
Device::writeBram(ResourceId id, std::uint64_t word)
{
    const ElementHandle h = bram_.ensure(
        id, [this](ResourceId rid) { return makeBramBlock(rid); });
    bram_.at(h).write(word, elapsedHours());
}

const BramBlock &
Device::readBram(ResourceId id)
{
    const ElementHandle h = bram_.ensure(
        id, [this](ResourceId rid) { return makeBramBlock(rid); });
    BramBlock &block = bram_.at(h);
    if (block.resolveRetention()) {
        // Decayed: the word the attacker reads is cell noise — a pure
        // per-id draw, so any observation order sees the same noise.
        block.content = util::Rng(config_.seed)
                            .split("bram_decay")
                            .split(id.key())
                            .uniformInt(0, ~0ULL);
    }
    return block;
}

const BramBlock *
Device::findBramBlock(ResourceId id) const
{
    const ElementHandle h = bram_.find(id.key());
    return h == kInvalidElement ? nullptr : &bram_.at(h);
}

void
Device::zeroBram()
{
    const std::size_t count = bram_.size();
    for (std::size_t i = 0; i < count; ++i) {
        bram_.sweepAt(static_cast<ElementHandle>(i)).zero();
    }
}

void
Device::accrueBramOffPower(double hours)
{
    if (!(hours >= 0.0)) {
        util::fatal("Device::accrueBramOffPower: negative hours");
    }
    const std::size_t count = bram_.size();
    for (std::size_t i = 0; i < count; ++i) {
        bram_.sweepAt(static_cast<ElementHandle>(i))
            .accrueOffPower(hours);
    }
}

void
Device::applyBramConfiguration()
{
    // Configuration writes the whole BRAM column: every block is
    // zeroed (this is why reconfiguration kills the content channel)
    // and the design's declared init words land on top.
    zeroBram();
    if (design_ == nullptr) {
        bram_applied_design_.clear();
        bram_applied_revision_ = 0;
        return;
    }
    for (const auto &[key, word] : design_->bramInitMap()) {
        writeBram(ResourceId::fromKey(key), word);
    }
    bram_applied_design_ = design_->name();
    bram_applied_revision_ = design_->bramRevision();
}

ElementHandle
Device::bindElement(ResourceId id)
{
    const ElementHandle h = store_.ensure(
        id, [this](ResourceId rid) { return makeElement(rid); });
    if (h >= synced_.size()) {
        // Born now: released activity, and skip the pre-birth closed
        // segments. (Replaying them would be a no-op anyway — a
        // pristine, released element only accrues recovery, which
        // applyRecovery drops — but starting at the present position
        // avoids the dead loop.) Growth happens only here, in
        // exclusive phases: concurrent syncs touch bound handles,
        // which are always already covered.
        live_.resize(store_.size());
        synced_.resize(store_.size(), timeline_.position());
        // First observation of a journal-deferred element: replay the
        // activity runs its tenancies recorded, leaving it exactly
        // where eager materialisation would have after the last flip.
        const std::vector<JournalRun> runs = journal_.consume(id.key());
        if (!runs.empty()) {
            replayJournalRuns(h, runs);
        }
    }
    return h;
}

RoutingElement &
Device::element(ResourceId id)
{
    const ElementHandle h = bindElement(id);
    syncHandles(&h, 1);
    return store_.at(h);
}

const RoutingElement *
Device::findElement(ResourceId id) const
{
    const ElementHandle h = store_.find(id.key());
    return h == kInvalidElement ? nullptr : &store_.at(h);
}

void
Device::replaySpan(RoutingElement &elem,
                   const ElementActivity &activity, std::uint32_t from,
                   std::uint32_t to)
{
    if (to - from >= kReduceRunThreshold) {
        // Long constant-activity run: one update from the timeline's
        // pre-reduced effective-hour totals. The memo makes this
        // O(elements + segments) per flush instead of
        // O(elements x segments) — the difference between a
        // fleet-year wipe costing milliseconds and seconds.
        const RunTotals totals = timeline_.runTotals(from, to);
        elem.ageEffective(config_.bti, activity, totals.stress_eff_h,
                          totals.recovery_eff_h);
    } else {
        const auto &closed = timeline_.closed();
        for (std::uint32_t pos = from; pos < to; ++pos) {
            elem.age(config_.bti, closed[pos].ctx, activity,
                     closed[pos].duration_h);
        }
    }
}

void
Device::replayHandle(ElementHandle h)
{
    const std::uint32_t end = timeline_.position();
    const std::uint32_t pos = synced_[h];
    if (pos != end) {
        replaySpan(store_.sweepAt(h), live_[h], pos, end);
        synced_[h] = end;
    }
}

void
Device::replayJournalRuns(ElementHandle h,
                          const std::vector<JournalRun> &runs)
{
    // Each run [from_i, from_i+1) is the span an eager element would
    // have replayed at flip i+1, so both paths take the identical
    // per-segment vs pre-reduced decisions and the aging state is
    // bit-identical. The final run stays pending: live activity +
    // synced position land exactly where the eager element stood
    // after its last flip, and the next sync picks up the tail.
    RoutingElement &elem = store_.sweepAt(h);
    for (std::size_t i = 0; i + 1 < runs.size(); ++i) {
        replaySpan(elem, runs[i].activity, runs[i].from,
                   runs[i + 1].from);
    }
    live_[h] = runs.back().activity;
    synced_[h] = runs.back().from;
}

void
Device::materializeJournal()
{
    // consume() happens inside bindElement, so snapshot the key set
    // first. Materialisation order is irrelevant: variation is a pure
    // function of (seed, id) and replay is element-local.
    for (const std::uint64_t key : journal_.activeKeys()) {
        bindElement(ResourceId::fromKey(key));
    }
}

void
Device::syncHandles(const ElementHandle *handles, std::size_t count)
{
    // Deferred idle time (cloud instances) must land on the timeline
    // before any element state is replayed. No-op outside deferral,
    // and deferral never coexists with the concurrent measurement
    // fan-out (a loaded design forces eager advancement).
    flushExternalTime();
    // Serialises against concurrent syncs from the per-sensor
    // measurement fan-out (unconditionally: a lock-free pre-check
    // would race with close()/replay under the lock). The lock is
    // cold — Route guards delay queries with the state epoch and Tdc
    // syncs only on an arrival-cache miss, so per-trace hot loops
    // never get here.
    const std::lock_guard<std::mutex> lock(sync_mutex_);
    timeline_.close();
    // Hoisted already-synced guard: the second polarity's arrival
    // walk of a measurement sweep re-syncs the same handles, so half
    // of all calls see every element current.
    const std::uint32_t end = timeline_.position();
    for (std::size_t i = 0; i < count; ++i) {
        if (synced_[handles[i]] != end) {
            replayHandle(handles[i]);
        }
    }
    // Steady-state advance+query workloads never reload a design, so
    // this is their only chance to drop fully-consumed history.
    maybeCompactTimeline();
}

std::size_t
Device::timelineSegments() const
{
    return timeline_.closed().size() +
           (timeline_.openPending() ? 1 : 0);
}

RouteSpec
Device::allocateRoute(const std::string &name, double target_ps)
{
    if (target_ps <= 0.0) {
        util::fatal("Device::allocateRoute: non-positive target delay");
    }
    const auto count = static_cast<std::size_t>(
        std::max(1.0, std::round(target_ps / config_.routing_pitch_ps)));
    RouteSpec spec;
    spec.name = name;
    spec.target_ps = target_ps;
    spec.elements.reserve(count);
    const std::uint64_t per_tile = config_.nodes_per_tile;
    const std::uint64_t capacity = static_cast<std::uint64_t>(
                                       config_.tiles_x) *
                                   config_.tiles_y * per_tile;
    if (alloc_cursor_ + count > capacity) {
        util::fatal("Device::allocateRoute: fabric exhausted");
    }
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t linear = alloc_cursor_++;
        ResourceId id;
        id.type = ResourceType::RoutingNode;
        id.index = static_cast<std::uint16_t>(linear % per_tile);
        const std::uint64_t tile = linear / per_tile;
        id.tile_x = static_cast<std::uint16_t>(tile % config_.tiles_x);
        id.tile_y = static_cast<std::uint16_t>(tile / config_.tiles_x);
        spec.elements.push_back(id);
    }
    return spec;
}

RouteSpec
Device::allocateCarryChain(const std::string &name, std::size_t taps)
{
    if (taps == 0) {
        util::fatal("Device::allocateCarryChain: zero taps");
    }
    RouteSpec spec;
    spec.name = name;
    spec.target_ps = static_cast<double>(taps) * config_.carry_pitch_ps;
    spec.elements.reserve(taps);
    // Carry chains occupy a dedicated column address space; they are
    // "uniformly placed and routed in consecutive physical locations"
    // (paper §4).
    for (std::size_t i = 0; i < taps; ++i) {
        const std::uint64_t linear = carry_cursor_++;
        ResourceId id;
        id.type = ResourceType::CarryElement;
        id.index = static_cast<std::uint16_t>(linear & 0xffff);
        id.tile_x = static_cast<std::uint16_t>((linear >> 16) & 0xffff);
        id.tile_y = static_cast<std::uint16_t>((linear >> 32) & 0xffff);
        spec.elements.push_back(id);
    }
    return spec;
}

RouteSpec
Device::allocateLutPath(const std::string &name, std::size_t cells)
{
    if (cells == 0) {
        util::fatal("Device::allocateLutPath: zero cells");
    }
    RouteSpec spec;
    spec.name = name;
    spec.target_ps = static_cast<double>(cells) * config_.lut_pitch_ps;
    spec.elements.reserve(cells);
    for (std::size_t i = 0; i < cells; ++i) {
        const std::uint64_t linear = lut_cursor_++;
        ResourceId id;
        id.type = ResourceType::Lut;
        id.index = static_cast<std::uint16_t>(linear & 0xffff);
        id.tile_x = static_cast<std::uint16_t>((linear >> 16) & 0xffff);
        id.tile_y = static_cast<std::uint16_t>((linear >> 32) & 0xffff);
        spec.elements.push_back(id);
    }
    return spec;
}

std::vector<ResourceId>
Device::materializedIds() const
{
    return store_.sortedIds();
}

std::vector<ResourceId>
Device::imprintedIds() const
{
    // Materialised and journal-deferred keys are disjoint by the
    // journal invariant, so a concatenate-and-sort yields the eager
    // materialised set in its canonical (packed-key-sorted) order.
    std::vector<ResourceId> ids = store_.sortedIds();
    const std::vector<std::uint64_t> deferred = journal_.activeKeys();
    ids.reserve(ids.size() + deferred.size());
    for (const std::uint64_t key : deferred) {
        ids.push_back(ResourceId::fromKey(key));
    }
    std::sort(ids.begin(), ids.end(),
              [](const ResourceId &a, const ResourceId &b) {
                  return a.key() < b.key();
              });
    return ids;
}

Route
Device::bindRoute(const RouteSpec &spec)
{
    return Route(*this, spec);
}

void
Device::loadDesign(std::shared_ptr<const Design> design)
{
    if (!design) {
        util::fatal("Device::loadDesign: null design");
    }
    // Activity flips are segment boundaries: deferred idle spans must
    // precede them on the timeline.
    flushExternalTime();
    if (design_ == design && activity_design_ == design &&
        activity_revision_ == design->revision() &&
        covered_slab_ == store_.size() &&
        bram_applied_revision_ == design->bramRevision()) {
        // Re-loading the resident, unmutated design: nothing physical
        // changes — no reconfiguration happens, so BRAM contents
        // survive and neither the timeline nor the epoch moves.
        return;
    }
    // applyDesignActivity resolves (and thereby materialises) every
    // element the design configures, so aging accrues from the moment
    // the design starts running — a victim's routes must burn in even
    // if nothing ever reads their delay.
    design_ = std::move(design);
    applyDesignActivity();
    // A real (re)configuration zeroes BRAM and lands the new design's
    // init words. Gated on (name, bramRevision) rather than object
    // identity so that re-loading an equivalent design into a
    // *restored* device — the checkpoint-resume path, which must be
    // neutral for every persistent state — leaves mid-tenancy BRAM
    // contents exactly as serialized, the same way the activity apply
    // above is flip-free there. Independent of the activity apply:
    // no aging state, journal run, or Rng stream is shared between
    // the channels.
    if (design_->name() != bram_applied_design_ ||
        design_->bramRevision() != bram_applied_revision_) {
        applyBramConfiguration();
    }
    maybeCompactTimeline();
    ++state_epoch_;
}

void
Device::wipe()
{
    flushExternalTime();
    // Clears the configuration only. Aging — the pentimento — stays,
    // but the configured elements' activity flips to released: their
    // pending burn time is replayed first, then recovery begins.
    // Journal-deferred elements just get the released run recorded —
    // the wipe touches no element state at all for them.
    bool closed = false;
    const auto closeOnce = [&] {
        if (!closed) {
            timeline_.close();
            closed = true;
        }
    };
    if (configured_ != nullptr) {
        // Journal flips are recorded at the position the boundary
        // will have once the segment closes (single probe per key);
        // the close happens iff anything — journaled or live —
        // actually flips, as in the eager path.
        const std::uint32_t flip_pos =
            timeline_.position() +
            (timeline_.openPending() ? 1u : 0u);
        for (const ElementHandle h : configured_->handles) {
            if (live_[h] == kUnusedActivity) {
                continue;
            }
            closeOnce();
            replayHandle(h);
            live_[h] = kUnusedActivity;
        }
        // With the slab unchanged since the design was applied, the
        // cohort split is still exact: no deferred key can have
        // materialised, so the per-key store probe is skipped.
        const bool cohorts_exact = configured_->slab == store_.size();
        for (const std::uint64_t key : configured_->keys) {
            // A key deferred when the design was applied may have
            // materialised since (a Route/Tdc bound it mid-tenancy);
            // it then flips through its live activity like any other
            // element. (Anticipated-position journal records and
            // post-close replays may interleave freely: the recorded
            // position equals the post-close position either way.)
            const ElementHandle h = cohorts_exact
                                        ? kInvalidElement
                                        : store_.findExclusive(key);
            if (h != kInvalidElement) {
                if (live_[h] == kUnusedActivity) {
                    continue;
                }
                closeOnce();
                replayHandle(h);
                live_[h] = kUnusedActivity;
            } else if (journal_.recordIfChanged(key, kUnusedActivity,
                                                flip_pos)) {
                closeOnce();
            }
        }
    }
    configured_.reset();
    design_.reset();
    activity_design_.reset();
    activity_revision_ = 0;
    // BRAM contents survive the wipe — that is this channel's
    // vulnerability — but the applied-configuration tracking clears:
    // any bitstream loaded after a wipe, even the same one, is a real
    // reconfiguration and must zero the blocks.
    bram_applied_design_.clear();
    bram_applied_revision_ = 0;
    covered_slab_ = store_.size();
    maybeCompactTimeline();
    ++state_epoch_;
}

std::shared_ptr<const Device::ResolvedDesign>
Device::resolveResidentDesign(std::uint32_t flip_pos,
                              std::size_t *journal_flips,
                              bool *records_applied)
{
    // Resolution splits the configured keys into cohorts: elements
    // already in the slab resolve to handles, the rest stay packed
    // keys for the journal. Under eager_materialisation every key is
    // bound here instead (the pre-journal behaviour), so the deferred
    // cohort is empty and nothing downstream ever journals.
    *records_applied = false;
    for (const auto &entry : resolved_designs_) {
        if (entry == nullptr || entry->design != design_ ||
            entry->slab != store_.size() ||
            entry->keyset_revision != design_->keysetRevision()) {
            continue;
        }
        if (entry->revision != design_->revision()) {
            // Values rotated in place (mitigation flips, churn
            // midflips): the key set — and with it the map's
            // iteration order and the cohort split — is unchanged,
            // so one in-order walk refreshes both activity vectors
            // (and journals the deferred flips) with no hashing into
            // the map and no allocation.
            std::size_t hi = 0;
            std::size_t ki = 0;
            std::size_t i = 0;
            for (const auto &[key, activity] :
                 design_->activityMap()) {
                (void)key;
                if (entry->deferred_order[i++]) {
                    entry->key_activities[ki] = activity;
                    if (journal_.recordIfChanged(entry->keys[ki],
                                                 activity,
                                                 flip_pos)) {
                        ++*journal_flips;
                    }
                    ++ki;
                } else {
                    entry->activities[hi++] = activity;
                }
            }
            entry->revision = design_->revision();
            *records_applied = true;
        }
        return entry;
    }
    // Recycle the eviction victim when nothing else aliases it
    // (tenancy churn evicts one entry per load; reusing it keeps the
    // five cohort vectors' capacity and spares the allocator).
    std::shared_ptr<ResolvedDesign> entry =
        std::move(resolved_designs_[resolved_lru_]);
    if (entry != nullptr && entry.use_count() == 1) {
        entry->design.reset();
        entry->handles.clear();
        entry->activities.clear();
        entry->keys.clear();
        entry->key_activities.clear();
        entry->deferred_order.clear();
    } else {
        entry = std::make_shared<ResolvedDesign>();
    }
    entry->design = design_;
    entry->revision = design_->revision();
    entry->keyset_revision = design_->keysetRevision();
    const auto &map = design_->activityMap();
    entry->handles.reserve(map.size());
    entry->activities.reserve(map.size());
    entry->deferred_order.reserve(map.size());
    if (!config_.eager_materialisation) {
        // One up-front growth instead of doubling mid-walk.
        journal_.reserve(map.size());
    }
    for (const auto &[key, activity] : map) {
        if (config_.eager_materialisation) {
            entry->activities.push_back(activity);
            entry->handles.push_back(
                bindElement(ResourceId::fromKey(key)));
            entry->deferred_order.push_back(false);
            continue;
        }
        const ElementHandle h = store_.findExclusive(key);
        if (h != kInvalidElement) {
            entry->activities.push_back(activity);
            entry->handles.push_back(h);
            entry->deferred_order.push_back(false);
        } else {
            entry->key_activities.push_back(activity);
            entry->keys.push_back(key);
            entry->deferred_order.push_back(true);
            if (journal_.recordIfChanged(key, activity, flip_pos)) {
                ++*journal_flips;
            }
        }
    }
    // Slab size after resolving: a hit means nothing materialised
    // since, so the cohort split is still accurate.
    entry->slab = store_.size();
    resolved_designs_[resolved_lru_] = entry;
    resolved_lru_ ^= 1;
    *records_applied = true;
    return entry;
}

void
Device::applyDesignActivity()
{
    // Deferred-cohort flips are journaled in a single probe per key
    // at the position the boundary WILL have once the segment closes
    // (so: computed before anything closes); the close itself happens
    // iff anything flipped — the identical condition and boundary the
    // eager path produces, which is what keeps the compensated
    // duration sums (and so every aged delay) bit-exact.
    const std::uint32_t flip_pos =
        timeline_.position() + (timeline_.openPending() ? 1u : 0u);
    std::size_t journal_flips = 0;
    bool records_applied = false;
    const std::shared_ptr<const ResolvedDesign> resolved =
        resolveResidentDesign(flip_pos, &journal_flips,
                              &records_applied);
    // Collect the materialised flips so an unchanged (or merely
    // revision-bumped) design never splits a timeline segment. The
    // mark scratch implements "still configured by the new design"
    // without a hash lookup per outgoing handle.
    flip_scratch_.clear();
    ++mark_stamp_;
    mark_scratch_.resize(store_.size(), 0);
    for (const ElementHandle h : resolved->handles) {
        mark_scratch_[h] = mark_stamp_;
    }
    if (configured_ != nullptr) {
        const auto &incoming = design_->activityMap();
        for (const ElementHandle h : configured_->handles) {
            if (mark_scratch_[h] == mark_stamp_ ||
                live_[h] == kUnusedActivity) {
                continue;
            }
            flip_scratch_.emplace_back(h, kUnusedActivity);
        }
        // Slab unchanged since apply => the outgoing cohort split is
        // still exact and the per-key store probe can be skipped.
        const bool cohorts_exact = configured_->slab == store_.size();
        for (const std::uint64_t key : configured_->keys) {
            // Deferred when applied, but possibly materialised since
            // (a mid-tenancy bind consumed its journal runs).
            const ElementHandle h = cohorts_exact
                                        ? kInvalidElement
                                        : store_.findExclusive(key);
            if (h != kInvalidElement) {
                if (mark_scratch_[h] == mark_stamp_ ||
                    live_[h] == kUnusedActivity) {
                    continue;
                }
                flip_scratch_.emplace_back(h, kUnusedActivity);
            } else if (incoming.find(key) == incoming.end() &&
                       journal_.recordIfChanged(key, kUnusedActivity,
                                                flip_pos)) {
                // Not configured by the new design: released. (Keys
                // the new design keeps are handled below, so their
                // single journal probe sees the new activity.)
                ++journal_flips;
            }
        }
    }
    for (std::size_t i = 0; i < resolved->handles.size(); ++i) {
        const ElementHandle h = resolved->handles[i];
        if (!(live_[h] == resolved->activities[i])) {
            flip_scratch_.emplace_back(h, resolved->activities[i]);
        }
    }
    if (!records_applied) {
        // Pure cache hit (the attack-phase measure/park alternation):
        // the resolution pass didn't run, so journal the deferred
        // cohort's flips here.
        for (std::size_t i = 0; i < resolved->keys.size(); ++i) {
            if (journal_.recordIfChanged(resolved->keys[i],
                                         resolved->key_activities[i],
                                         flip_pos)) {
                ++journal_flips;
            }
        }
    }
    if (!flip_scratch_.empty() || journal_flips != 0) {
        timeline_.close();
        for (const auto &[h, activity] : flip_scratch_) {
            replayHandle(h);
            live_[h] = activity;
        }
    }
    configured_ = resolved;
    activity_design_ = design_;
    activity_revision_ = design_->revision();
    covered_slab_ = store_.size();
}

void
Device::syncActivityWithDesign()
{
    if (design_ == nullptr) {
        return; // wipe already released every configured element
    }
    if (activity_design_ == design_ &&
        activity_revision_ == design_->revision() &&
        covered_slab_ == store_.size()) {
        return;
    }
    applyDesignActivity();
}

void
Device::maybeCompactTimeline()
{
    if (timeline_.closed().size() < compact_watermark_) {
        return;
    }
    // Prefix trim: drop every segment the *least*-synced element has
    // already consumed, so one long-stale element (a past tenancy's
    // routes nobody measures again) only pins its own unreplayed
    // suffix, not the whole history. Journal-deferred elements pin
    // from their first recorded run — their replay is still owed the
    // history.
    std::uint32_t min_pos =
        journal_.minActivePosition(timeline_.position());
    for (const std::uint32_t pos : synced_) {
        min_pos = std::min(min_pos, pos);
        if (min_pos == 0) {
            break;
        }
    }
    if (min_pos > 0) {
        timeline_.dropConsumed(min_pos);
        for (std::uint32_t &pos : synced_) {
            pos -= min_pos;
        }
        journal_.rebase(min_pos);
    }
    // Back off geometrically when little was reclaimable so a pinned
    // element does not turn every sync into an O(elements) scan.
    compact_watermark_ = std::max<std::size_t>(
        kCompactThreshold, 2 * timeline_.closed().size());
}

void
Device::sweepElements(std::size_t count,
                      const std::function<void(std::size_t)> &body)
{
    if (pool_ == nullptr || pool_->workerCount() == 0) {
        for (std::size_t i = 0; i < count; ++i) {
            body(i);
        }
        return;
    }
    // Element updates are RNG-free and element-local, so the fan-out
    // is bit-identical to the serial loop for any worker count. No
    // design may be loaded concurrently (experiment phases alternate
    // serially), so the slab is stable for the duration.
    pool_->parallelFor(0, count, body);
}

void
Device::recordSpan(double dt_h, double die_temp_k, bool credit_elapsed)
{
    // In-place design mutations since the last call flip their
    // elements' activity *before* the new span accrues.
    syncActivityWithDesign();
    if (store_.size() != 0 || journal_.activeKeyCount() != 0) {
        timeline_.append(dt_h, ctx_cache_.get(config_.bti, die_temp_k));
        // Long-idle boards (cloud ambient drift opens ~one segment
        // per hour) trim their fully-consumed prefix here; the
        // watermark keeps this O(1) between amortised scans.
        maybeCompactTimeline();
    }
    // (A fabric with no materialised elements AND no journaled keys
    // records nothing: elements materialised later are pristine and
    // released, so the skipped spans are no-ops. Journaled keys are
    // NOT pristine — their deferred replay needs these segments — so
    // the guard matches the eager path, where they would be in the
    // slab already.)
    if (credit_elapsed) {
        elapsed_h_.add(dt_h);
    }
    ++state_epoch_;
}

void
Device::advance(double dt_h, phys::ThermalEnvironment &thermal)
{
    if (!(dt_h >= 0.0)) {
        util::fatal("Device::advance: negative time step");
    }
    flushExternalTime();
    const double power = design_ ? design_->powerW() : 0.0;
    recordSpan(dt_h, thermal.step(power, dt_h), true);
}

void
Device::advanceAt(double dt_h, double die_temp_k)
{
    if (!(dt_h >= 0.0)) {
        util::fatal("Device::advanceAt: negative time step");
    }
    if (!(die_temp_k > 0.0) || !std::isfinite(die_temp_k)) {
        util::fatal("Device::advanceAt: bad die temperature");
    }
    // Deferred idle spans must precede this span on the timeline
    // (no-op re-entrancy: the flush resets its backlog before
    // walking, and its own spans arrive via ingestSegment).
    flushExternalTime();
    recordSpan(dt_h, die_temp_k, true);
}

void
Device::creditIdleHours(double dt_h)
{
    if (!(dt_h >= 0.0)) {
        util::fatal("Device::creditIdleHours: negative time step");
    }
    elapsed_h_.add(dt_h);
    ++state_epoch_;
}

void
Device::ingestSegment(double dt_h, double die_temp_k)
{
    if (!(dt_h >= 0.0)) {
        util::fatal("Device::ingestSegment: negative time step");
    }
    if (!(die_temp_k > 0.0) || !std::isfinite(die_temp_k)) {
        util::fatal("Device::ingestSegment: bad die temperature");
    }
    recordSpan(dt_h, die_temp_k, false);
}

void
Device::applyServiceWear(double hours, double duty_one)
{
    if (hours < 0.0) {
        util::fatal("Device::applyServiceWear: negative hours");
    }
    if (hours == 0.0) {
        return;
    }
    flushExternalTime();
    // Whole-fabric sweep: the deferred population must exist (and
    // have replayed its journal) before the wear lands, exactly as
    // the eager slab would.
    materializeJournal();
    timeline_.close();
    const phys::AgingStepContext &ctx =
        ctx_cache_.get(config_.bti, config_.bti.reference_temp_k);
    const std::size_t count = store_.size();
    sweepElements(count, [&](std::size_t i) {
        const auto h = static_cast<ElementHandle>(i);
        replayHandle(h);
        store_.sweepAt(h).aging().holdToggling(config_.bti, ctx,
                                               duty_one, hours);
    });
    maybeCompactTimeline();
    ++state_epoch_;
}

void
Device::saveState(util::SnapshotWriter &writer) const
{
    // Config fingerprint: restore requires a device rebuilt from the
    // same silicon identity — variation is a pure function of
    // (seed, id), so a seed skew would graft one board's aging onto
    // another board's delays and quietly invalidate every number.
    writer.str(config_.family);
    writer.u64(config_.seed);
    writer.f64(config_.service_age_h);
    writer.u32(config_.tiles_x);
    writer.u32(config_.tiles_y);
    writer.u32(config_.nodes_per_tile);
    writer.u8(config_.eager_materialisation ? 1 : 0);
    // Retention identity: the per-block limits are pure draws from
    // (seed, median, sigma), so a knob skew would graft one board's
    // decay behaviour onto another's contents.
    writer.f64(config_.bram_retention_median_h);
    writer.f64(config_.bram_retention_sigma);

    writer.f64(elapsed_h_.rawSum());
    writer.f64(elapsed_h_.rawCompensation());
    writer.u64(state_epoch_);
    writer.u64(alloc_cursor_);
    writer.u64(carry_cursor_);
    writer.u64(lut_cursor_);
    writer.u64(compact_watermark_);
    writer.u8(design_ != nullptr ? 1 : 0);

    // Timeline, including the still-open segment's raw accumulator —
    // closing it here would move a flip boundary the live run has not
    // produced yet.
    const auto &closed = timeline_.closed();
    writer.u64(closed.size());
    for (const AgingSegment &seg : closed) {
        writer.f64(seg.duration_h);
        writer.f64(seg.ctx.stress_accel);
        writer.f64(seg.ctx.recovery_accel);
    }
    writer.u8(timeline_.openValid() ? 1 : 0);
    writer.f64(timeline_.openContext().stress_accel);
    writer.f64(timeline_.openContext().recovery_accel);
    writer.f64(timeline_.openHours().rawSum());
    writer.f64(timeline_.openHours().rawCompensation());

    // Elements in handle (slab) order, so the handle-indexed live_/
    // synced_ arrays and every restored handle stay aligned.
    const std::size_t count = store_.size();
    writer.u64(count);
    for (std::size_t i = 0; i < count; ++i) {
        const auto h = static_cast<ElementHandle>(i);
        const RoutingElement &elem = store_.sweepAt(h);
        writer.u64(elem.id().key());
        writer.f64(elem.basePs(phys::Transition::Rising));
        writer.f64(elem.basePs(phys::Transition::Falling));
        writer.f64(elem.aging().scale());
        const phys::BtiState &nmos =
            elem.aging().state(phys::TransistorType::Nmos);
        const phys::BtiState &pmos =
            elem.aging().state(phys::TransistorType::Pmos);
        writer.f64(nmos.stressHours());
        writer.f64(nmos.recoveryHours());
        writer.f64(pmos.stressHours());
        writer.f64(pmos.recoveryHours());
        writer.u8(static_cast<std::uint8_t>(live_[i].kind));
        writer.f64(live_[i].duty_one);
        writer.u32(synced_[i]);
    }

    journal_.saveState(writer);

    // BRAM content slab, in handle order like the element slab. Raw
    // state: a Written block with pending off-power hours serializes
    // unresolved — resolution happens at readback on whichever side
    // of the checkpoint the readback lands, with identical results
    // (the retention limit travels with the block). The applied-
    // configuration tracking travels too, so the resume re-load of
    // the resident design recognises itself and stays BRAM-neutral.
    writer.str(bram_applied_design_);
    writer.u64(bram_applied_revision_);
    const std::size_t bram_count = bram_.size();
    writer.u64(bram_count);
    for (std::size_t i = 0; i < bram_count; ++i) {
        const BramBlock &block =
            bram_.sweepAt(static_cast<ElementHandle>(i));
        writer.u64(block.id_.key());
        writer.u8(static_cast<std::uint8_t>(block.state));
        writer.u64(block.content);
        writer.f64(block.written_at_h);
        writer.f64(block.off_power_h);
        writer.f64(block.retention_limit_h);
    }
}

util::Expected<void>
Device::restoreState(util::SnapshotReader &reader, bool *had_design)
{
    if (store_.size() != 0 || timeline_.position() != 0 ||
        timeline_.openValid() || journal_.activeKeyCount() != 0 ||
        bram_.size() != 0 || design_ != nullptr ||
        elapsed_h_.value() != 0.0) {
        return util::unexpected(
            "Device::restoreState: target device is not pristine");
    }

    const std::string family = reader.str();
    const std::uint64_t seed = reader.u64();
    const double service_age_h = reader.f64();
    const std::uint32_t tiles_x = reader.u32();
    const std::uint32_t tiles_y = reader.u32();
    const std::uint32_t nodes_per_tile = reader.u32();
    const bool eager = reader.u8() != 0;
    const double retention_median = reader.f64();
    const double retention_sigma = reader.f64();
    if (!reader.ok()) {
        return reader.status();
    }
    if (family != config_.family || seed != config_.seed ||
        service_age_h != config_.service_age_h ||
        tiles_x != config_.tiles_x || tiles_y != config_.tiles_y ||
        nodes_per_tile != config_.nodes_per_tile ||
        eager != config_.eager_materialisation ||
        retention_median != config_.bram_retention_median_h ||
        retention_sigma != config_.bram_retention_sigma) {
        reader.fail("snapshot: device config fingerprint mismatch "
                    "(checkpoint was taken on a different board)");
        return reader.status();
    }

    const double elapsed_sum = reader.f64();
    const double elapsed_comp = reader.f64();
    const std::uint64_t state_epoch = reader.u64();
    const std::uint64_t alloc_cursor = reader.u64();
    const std::uint64_t carry_cursor = reader.u64();
    const std::uint64_t lut_cursor = reader.u64();
    const std::uint64_t compact_watermark = reader.u64();
    const bool design_was_loaded = reader.u8() != 0;

    const std::uint64_t closed_count = reader.u64();
    if (!reader.ok()) {
        return reader.status();
    }
    std::vector<AgingSegment> closed;
    closed.reserve(closed_count);
    for (std::uint64_t i = 0; i < closed_count && reader.ok(); ++i) {
        AgingSegment seg;
        seg.duration_h = reader.f64();
        seg.ctx.stress_accel = reader.f64();
        seg.ctx.recovery_accel = reader.f64();
        if (reader.ok() &&
            (!std::isfinite(seg.duration_h) || seg.duration_h <= 0.0 ||
             !std::isfinite(seg.ctx.stress_accel) ||
             !std::isfinite(seg.ctx.recovery_accel))) {
            reader.fail("snapshot: timeline segment is not physical");
        }
        closed.push_back(seg);
    }
    const bool open_valid = reader.u8() != 0;
    phys::AgingStepContext open_ctx;
    open_ctx.stress_accel = reader.f64();
    open_ctx.recovery_accel = reader.f64();
    const double open_sum = reader.f64();
    const double open_comp = reader.f64();

    const std::uint64_t element_count = reader.u64();
    if (!reader.ok()) {
        return reader.status();
    }
    live_.reserve(element_count);
    synced_.reserve(element_count);
    for (std::uint64_t i = 0; i < element_count; ++i) {
        const std::uint64_t key = reader.u64();
        const double base_rise = reader.f64();
        const double base_fall = reader.f64();
        const double scale = reader.f64();
        const double nmos_stress = reader.f64();
        const double nmos_recovery = reader.f64();
        const double pmos_stress = reader.f64();
        const double pmos_recovery = reader.f64();
        const std::uint8_t live_kind = reader.u8();
        const double live_duty = reader.f64();
        const std::uint32_t synced = reader.u32();
        if (!reader.ok()) {
            return reader.status();
        }
        // RoutingElement's constructor fatals on nonsense inputs, and
        // a corrupt file must never reach a fatal — screen first.
        if (!(base_rise > 0.0) || !std::isfinite(base_rise) ||
            !(base_fall > 0.0) || !std::isfinite(base_fall) ||
            !std::isfinite(scale) || !(nmos_stress >= 0.0) ||
            !(nmos_recovery >= 0.0) || !(pmos_stress >= 0.0) ||
            !(pmos_recovery >= 0.0) || !std::isfinite(nmos_stress) ||
            !std::isfinite(nmos_recovery) ||
            !std::isfinite(pmos_stress) ||
            !std::isfinite(pmos_recovery)) {
            reader.fail("snapshot: element physical state is not sane");
            return reader.status();
        }
        if (live_kind > static_cast<std::uint8_t>(Activity::Toggle) ||
            synced > closed_count) {
            reader.fail("snapshot: element activity bookkeeping is "
                        "out of range");
            return reader.status();
        }
        // Append in saved handle order: unit variation + the saved
        // composite scale reproduces the element exactly (the ctor
        // multiplies base delays by variation, which is already baked
        // into the saved bases).
        const ResourceId id = ResourceId::fromKey(key);
        const ElementHandle h = store_.ensure(id, [&](ResourceId rid) {
            return RoutingElement(rid, base_rise, base_fall,
                                  phys::ElementVariation{}, scale);
        });
        if (h != static_cast<ElementHandle>(i)) {
            reader.fail("snapshot: duplicate element key breaks "
                        "handle order");
            return reader.status();
        }
        phys::ElementAging &aging = store_.sweepAt(h).aging();
        aging.state(phys::TransistorType::Nmos)
            .restoreHours(nmos_stress, nmos_recovery);
        aging.state(phys::TransistorType::Pmos)
            .restoreHours(pmos_stress, pmos_recovery);
        live_.push_back(ElementActivity{
            static_cast<Activity>(live_kind), live_duty});
        synced_.push_back(synced);
    }

    if (!journal_.restoreState(reader)) {
        return reader.status();
    }
    // The journal invariant — a key is active there XOR materialised —
    // is what keeps bindElement's consume() sound; enforce it rather
    // than trusting two independently-deserialized containers.
    for (const std::uint64_t key : journal_.activeKeys()) {
        if (store_.findExclusive(key) != kInvalidElement) {
            reader.fail("snapshot: key both journaled and materialised");
            return reader.status();
        }
    }

    std::string bram_applied_design = reader.str();
    const std::uint64_t bram_applied_revision = reader.u64();
    const std::uint64_t bram_count = reader.u64();
    if (!reader.ok()) {
        return reader.status();
    }
    for (std::uint64_t i = 0; i < bram_count; ++i) {
        const std::uint64_t key = reader.u64();
        const std::uint8_t state = reader.u8();
        const std::uint64_t content = reader.u64();
        const double written_at = reader.f64();
        const double off_power = reader.f64();
        const double retention = reader.f64();
        if (!reader.ok()) {
            return reader.status();
        }
        if (state > static_cast<std::uint8_t>(BramState::Zeroed) ||
            !std::isfinite(written_at) || !(off_power >= 0.0) ||
            !std::isfinite(off_power) || !(retention >= 0.0) ||
            !std::isfinite(retention)) {
            reader.fail("snapshot: BRAM block state is not sane");
            return reader.status();
        }
        BramBlock block;
        block.id_ = ResourceId::fromKey(key);
        block.state = static_cast<BramState>(state);
        block.content = content;
        block.written_at_h = written_at;
        block.off_power_h = off_power;
        block.retention_limit_h = retention;
        const ElementHandle h = bram_.ensure(
            block.id_, [&](ResourceId) { return block; });
        if (h != static_cast<ElementHandle>(i)) {
            reader.fail("snapshot: duplicate BRAM key breaks handle "
                        "order");
            return reader.status();
        }
    }

    timeline_.restoreState(std::move(closed), open_ctx, open_sum,
                           open_comp, open_valid);
    bram_applied_design_ = std::move(bram_applied_design);
    bram_applied_revision_ = bram_applied_revision;
    elapsed_h_.restoreParts(elapsed_sum, elapsed_comp);
    state_epoch_ = state_epoch;
    alloc_cursor_ = alloc_cursor;
    carry_cursor_ = carry_cursor;
    lut_cursor_ = lut_cursor;
    compact_watermark_ =
        std::max<std::size_t>(kCompactThreshold, compact_watermark);
    covered_slab_ = store_.size();
    if (had_design != nullptr) {
        *had_design = design_was_loaded;
    }
    return reader.status();
}

} // namespace pentimento::fabric
