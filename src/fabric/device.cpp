#include "fabric/device.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace pentimento::fabric {

namespace {

constexpr ElementActivity kUnusedActivity{};

} // namespace

Device::Device(DeviceConfig config) : config_(std::move(config))
{
    if (config_.tiles_x == 0 || config_.tiles_y == 0 ||
        config_.nodes_per_tile == 0) {
        util::fatal("Device: empty fabric grid");
    }
    if (config_.routing_pitch_ps <= 0.0 || config_.carry_pitch_ps <= 0.0) {
        util::fatal("Device: non-positive element pitch");
    }
    fresh_scale_ =
        config_.age_model.freshStressScale(config_.service_age_h);
}

RoutingElement
Device::makeElement(ResourceId id) const
{
    // Variation must be a pure function of (device seed, resource id)
    // so that materialisation order is irrelevant and the same board
    // rented twice presents identical silicon.
    util::Rng stream = util::Rng(config_.seed).split(id.key());
    phys::VariationSampler sampler(config_.variation, stream);
    const phys::ElementVariation var = sampler.sample();
    double pitch = config_.routing_pitch_ps;
    double coupling = 1.0;
    switch (id.type) {
      case ResourceType::CarryElement:
        pitch = config_.carry_pitch_ps;
        break;
      case ResourceType::Lut:
        pitch = config_.lut_pitch_ps;
        coupling = config_.lut_bti_coupling;
        break;
      default:
        break;
    }
    return RoutingElement(id, pitch, pitch, var,
                          fresh_scale_ * coupling);
}

ElementHandle
Device::bindElement(ResourceId id)
{
    const ElementHandle h = store_.ensure(
        id, [this](ResourceId rid) { return makeElement(rid); });
    if (h >= synced_.size()) {
        // Born now: released activity, and skip the pre-birth closed
        // segments. (Replaying them would be a no-op anyway — a
        // pristine, released element only accrues recovery, which
        // applyRecovery drops — but starting at the present position
        // avoids the dead loop.) Growth happens only here, in
        // exclusive phases: concurrent syncs touch bound handles,
        // which are always already covered.
        live_.resize(store_.size());
        synced_.resize(store_.size(), timeline_.position());
    }
    return h;
}

RoutingElement &
Device::element(ResourceId id)
{
    const ElementHandle h = bindElement(id);
    syncHandles(&h, 1);
    return store_.at(h);
}

const RoutingElement *
Device::findElement(ResourceId id) const
{
    const ElementHandle h = store_.find(id.key());
    return h == kInvalidElement ? nullptr : &store_.at(h);
}

void
Device::replayHandle(ElementHandle h)
{
    const std::uint32_t end = timeline_.position();
    std::uint32_t pos = synced_[h];
    if (pos != end) {
        RoutingElement &elem = store_.sweepAt(h);
        const ElementActivity &activity = live_[h];
        if (end - pos >= kReduceRunThreshold) {
            // Long constant-activity run: one update from the
            // timeline's pre-reduced effective-hour totals. The memo
            // makes this O(elements + segments) per flush instead of
            // O(elements x segments) — the difference between a
            // fleet-year wipe costing milliseconds and seconds.
            const RunTotals totals = timeline_.runTotals(pos, end);
            elem.ageEffective(config_.bti, activity,
                              totals.stress_eff_h,
                              totals.recovery_eff_h);
        } else {
            const auto &closed = timeline_.closed();
            for (; pos < end; ++pos) {
                elem.age(config_.bti, closed[pos].ctx, activity,
                         closed[pos].duration_h);
            }
        }
        synced_[h] = end;
    }
}

void
Device::syncHandles(const ElementHandle *handles, std::size_t count)
{
    // Deferred idle time (cloud instances) must land on the timeline
    // before any element state is replayed. No-op outside deferral,
    // and deferral never coexists with the concurrent measurement
    // fan-out (a loaded design forces eager advancement).
    flushExternalTime();
    // Serialises against concurrent syncs from the per-sensor
    // measurement fan-out (unconditionally: a lock-free pre-check
    // would race with close()/replay under the lock). The lock is
    // cold — Route guards delay queries with the state epoch and Tdc
    // syncs only on an arrival-cache miss, so per-trace hot loops
    // never get here.
    const std::lock_guard<std::mutex> lock(sync_mutex_);
    timeline_.close();
    // Hoisted already-synced guard: the second polarity's arrival
    // walk of a measurement sweep re-syncs the same handles, so half
    // of all calls see every element current.
    const std::uint32_t end = timeline_.position();
    for (std::size_t i = 0; i < count; ++i) {
        if (synced_[handles[i]] != end) {
            replayHandle(handles[i]);
        }
    }
    // Steady-state advance+query workloads never reload a design, so
    // this is their only chance to drop fully-consumed history.
    maybeCompactTimeline();
}

std::size_t
Device::timelineSegments() const
{
    return timeline_.closed().size() +
           (timeline_.openPending() ? 1 : 0);
}

RouteSpec
Device::allocateRoute(const std::string &name, double target_ps)
{
    if (target_ps <= 0.0) {
        util::fatal("Device::allocateRoute: non-positive target delay");
    }
    const auto count = static_cast<std::size_t>(
        std::max(1.0, std::round(target_ps / config_.routing_pitch_ps)));
    RouteSpec spec;
    spec.name = name;
    spec.target_ps = target_ps;
    spec.elements.reserve(count);
    const std::uint64_t per_tile = config_.nodes_per_tile;
    const std::uint64_t capacity = static_cast<std::uint64_t>(
                                       config_.tiles_x) *
                                   config_.tiles_y * per_tile;
    if (alloc_cursor_ + count > capacity) {
        util::fatal("Device::allocateRoute: fabric exhausted");
    }
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t linear = alloc_cursor_++;
        ResourceId id;
        id.type = ResourceType::RoutingNode;
        id.index = static_cast<std::uint16_t>(linear % per_tile);
        const std::uint64_t tile = linear / per_tile;
        id.tile_x = static_cast<std::uint16_t>(tile % config_.tiles_x);
        id.tile_y = static_cast<std::uint16_t>(tile / config_.tiles_x);
        spec.elements.push_back(id);
    }
    return spec;
}

RouteSpec
Device::allocateCarryChain(const std::string &name, std::size_t taps)
{
    if (taps == 0) {
        util::fatal("Device::allocateCarryChain: zero taps");
    }
    RouteSpec spec;
    spec.name = name;
    spec.target_ps = static_cast<double>(taps) * config_.carry_pitch_ps;
    spec.elements.reserve(taps);
    // Carry chains occupy a dedicated column address space; they are
    // "uniformly placed and routed in consecutive physical locations"
    // (paper §4).
    for (std::size_t i = 0; i < taps; ++i) {
        const std::uint64_t linear = carry_cursor_++;
        ResourceId id;
        id.type = ResourceType::CarryElement;
        id.index = static_cast<std::uint16_t>(linear & 0xffff);
        id.tile_x = static_cast<std::uint16_t>((linear >> 16) & 0xffff);
        id.tile_y = static_cast<std::uint16_t>((linear >> 32) & 0xffff);
        spec.elements.push_back(id);
    }
    return spec;
}

RouteSpec
Device::allocateLutPath(const std::string &name, std::size_t cells)
{
    if (cells == 0) {
        util::fatal("Device::allocateLutPath: zero cells");
    }
    RouteSpec spec;
    spec.name = name;
    spec.target_ps = static_cast<double>(cells) * config_.lut_pitch_ps;
    spec.elements.reserve(cells);
    for (std::size_t i = 0; i < cells; ++i) {
        const std::uint64_t linear = lut_cursor_++;
        ResourceId id;
        id.type = ResourceType::Lut;
        id.index = static_cast<std::uint16_t>(linear & 0xffff);
        id.tile_x = static_cast<std::uint16_t>((linear >> 16) & 0xffff);
        id.tile_y = static_cast<std::uint16_t>((linear >> 32) & 0xffff);
        spec.elements.push_back(id);
    }
    return spec;
}

std::vector<ResourceId>
Device::materializedIds() const
{
    return store_.sortedIds();
}

Route
Device::bindRoute(const RouteSpec &spec)
{
    return Route(*this, spec);
}

void
Device::loadDesign(std::shared_ptr<const Design> design)
{
    if (!design) {
        util::fatal("Device::loadDesign: null design");
    }
    // Activity flips are segment boundaries: deferred idle spans must
    // precede them on the timeline.
    flushExternalTime();
    if (design_ == design && activity_design_ == design &&
        activity_revision_ == design->revision() &&
        covered_slab_ == store_.size()) {
        // Re-loading the resident, unmutated design: nothing physical
        // changes, so neither the timeline nor the epoch moves.
        return;
    }
    // applyDesignActivity resolves (and thereby materialises) every
    // element the design configures, so aging accrues from the moment
    // the design starts running — a victim's routes must burn in even
    // if nothing ever reads their delay.
    design_ = std::move(design);
    applyDesignActivity();
    maybeCompactTimeline();
    ++state_epoch_;
}

void
Device::wipe()
{
    flushExternalTime();
    // Clears the configuration only. Aging — the pentimento — stays,
    // but the configured elements' activity flips to released: their
    // pending burn time is replayed first, then recovery begins.
    bool closed = false;
    if (configured_ != nullptr) {
        for (const ElementHandle h : configured_->handles) {
            if (live_[h] == kUnusedActivity) {
                continue;
            }
            if (!closed) {
                timeline_.close();
                closed = true;
            }
            replayHandle(h);
            live_[h] = kUnusedActivity;
        }
    }
    configured_.reset();
    design_.reset();
    activity_design_.reset();
    activity_revision_ = 0;
    covered_slab_ = store_.size();
    maybeCompactTimeline();
    ++state_epoch_;
}

std::shared_ptr<const Device::ResolvedDesign>
Device::resolveResidentDesign()
{
    // Resolution materialises every configured element — including
    // ones a design acquired by in-place mutation after loading.
    // (Under PR 3 such elements materialised only when first bound;
    // binding them at the next activity sync instead means they burn
    // from the moment the mutated design runs, which is loadDesign's
    // documented contract. Aging for already-materialised elements is
    // unchanged.)
    for (const auto &entry : resolved_designs_) {
        if (entry != nullptr && entry->design == design_ &&
            entry->revision == design_->revision() &&
            entry->slab == store_.size()) {
            return entry;
        }
    }
    auto entry = std::make_shared<ResolvedDesign>();
    entry->design = design_;
    entry->revision = design_->revision();
    const auto &map = design_->activityMap();
    entry->handles.reserve(map.size());
    entry->activities.reserve(map.size());
    for (const auto &[key, activity] : map) {
        entry->activities.push_back(activity);
        entry->handles.push_back(bindElement(ResourceId::fromKey(key)));
    }
    // Slab size after binding: a hit means nothing materialised since.
    entry->slab = store_.size();
    resolved_designs_[resolved_lru_] = entry;
    resolved_lru_ ^= 1;
    return entry;
}

void
Device::applyDesignActivity()
{
    const std::shared_ptr<const ResolvedDesign> resolved =
        resolveResidentDesign();
    // Collect the actual flips first so an unchanged (or merely
    // revision-bumped) design never splits a timeline segment. The
    // mark scratch implements "still configured by the new design"
    // without a hash lookup per outgoing key.
    flip_scratch_.clear();
    ++mark_stamp_;
    mark_scratch_.resize(store_.size(), 0);
    for (const ElementHandle h : resolved->handles) {
        mark_scratch_[h] = mark_stamp_;
    }
    if (configured_ != nullptr) {
        for (const ElementHandle h : configured_->handles) {
            if (mark_scratch_[h] == mark_stamp_ ||
                live_[h] == kUnusedActivity) {
                continue;
            }
            flip_scratch_.emplace_back(h, kUnusedActivity);
        }
    }
    for (std::size_t i = 0; i < resolved->handles.size(); ++i) {
        const ElementHandle h = resolved->handles[i];
        if (!(live_[h] == resolved->activities[i])) {
            flip_scratch_.emplace_back(h, resolved->activities[i]);
        }
    }
    if (!flip_scratch_.empty()) {
        timeline_.close();
        for (const auto &[h, activity] : flip_scratch_) {
            replayHandle(h);
            live_[h] = activity;
        }
    }
    configured_ = resolved;
    activity_design_ = design_;
    activity_revision_ = design_->revision();
    covered_slab_ = store_.size();
}

void
Device::syncActivityWithDesign()
{
    if (design_ == nullptr) {
        return; // wipe already released every configured element
    }
    if (activity_design_ == design_ &&
        activity_revision_ == design_->revision() &&
        covered_slab_ == store_.size()) {
        return;
    }
    applyDesignActivity();
}

void
Device::maybeCompactTimeline()
{
    if (timeline_.closed().size() < compact_watermark_) {
        return;
    }
    // Prefix trim: drop every segment the *least*-synced element has
    // already consumed, so one long-stale element (a past tenancy's
    // routes nobody measures again) only pins its own unreplayed
    // suffix, not the whole history.
    std::uint32_t min_pos = timeline_.position();
    for (const std::uint32_t pos : synced_) {
        min_pos = std::min(min_pos, pos);
        if (min_pos == 0) {
            break;
        }
    }
    if (min_pos > 0) {
        timeline_.dropConsumed(min_pos);
        for (std::uint32_t &pos : synced_) {
            pos -= min_pos;
        }
    }
    // Back off geometrically when little was reclaimable so a pinned
    // element does not turn every sync into an O(elements) scan.
    compact_watermark_ = std::max<std::size_t>(
        kCompactThreshold, 2 * timeline_.closed().size());
}

void
Device::sweepElements(std::size_t count,
                      const std::function<void(std::size_t)> &body)
{
    if (pool_ == nullptr || pool_->workerCount() == 0) {
        for (std::size_t i = 0; i < count; ++i) {
            body(i);
        }
        return;
    }
    // Element updates are RNG-free and element-local, so the fan-out
    // is bit-identical to the serial loop for any worker count. No
    // design may be loaded concurrently (experiment phases alternate
    // serially), so the slab is stable for the duration.
    pool_->parallelFor(0, count, body);
}

void
Device::recordSpan(double dt_h, double die_temp_k, bool credit_elapsed)
{
    // In-place design mutations since the last call flip their
    // elements' activity *before* the new span accrues.
    syncActivityWithDesign();
    if (store_.size() != 0) {
        timeline_.append(dt_h, ctx_cache_.get(config_.bti, die_temp_k));
        // Long-idle boards (cloud ambient drift opens ~one segment
        // per hour) trim their fully-consumed prefix here; the
        // watermark keeps this O(1) between amortised scans.
        maybeCompactTimeline();
    }
    // (An empty fabric records nothing: elements materialised later
    // are pristine and released, so the skipped spans are no-ops.)
    if (credit_elapsed) {
        elapsed_h_.add(dt_h);
    }
    ++state_epoch_;
}

void
Device::advance(double dt_h, phys::ThermalEnvironment &thermal)
{
    if (!(dt_h >= 0.0)) {
        util::fatal("Device::advance: negative time step");
    }
    flushExternalTime();
    const double power = design_ ? design_->powerW() : 0.0;
    recordSpan(dt_h, thermal.step(power, dt_h), true);
}

void
Device::advanceAt(double dt_h, double die_temp_k)
{
    if (!(dt_h >= 0.0)) {
        util::fatal("Device::advanceAt: negative time step");
    }
    if (!(die_temp_k > 0.0) || !std::isfinite(die_temp_k)) {
        util::fatal("Device::advanceAt: bad die temperature");
    }
    // Deferred idle spans must precede this span on the timeline
    // (no-op re-entrancy: the flush resets its backlog before
    // walking, and its own spans arrive via ingestSegment).
    flushExternalTime();
    recordSpan(dt_h, die_temp_k, true);
}

void
Device::creditIdleHours(double dt_h)
{
    if (!(dt_h >= 0.0)) {
        util::fatal("Device::creditIdleHours: negative time step");
    }
    elapsed_h_.add(dt_h);
    ++state_epoch_;
}

void
Device::ingestSegment(double dt_h, double die_temp_k)
{
    if (!(dt_h >= 0.0)) {
        util::fatal("Device::ingestSegment: negative time step");
    }
    if (!(die_temp_k > 0.0) || !std::isfinite(die_temp_k)) {
        util::fatal("Device::ingestSegment: bad die temperature");
    }
    recordSpan(dt_h, die_temp_k, false);
}

void
Device::applyServiceWear(double hours, double duty_one)
{
    if (hours < 0.0) {
        util::fatal("Device::applyServiceWear: negative hours");
    }
    if (hours == 0.0) {
        return;
    }
    flushExternalTime();
    timeline_.close();
    const phys::AgingStepContext &ctx =
        ctx_cache_.get(config_.bti, config_.bti.reference_temp_k);
    const std::size_t count = store_.size();
    sweepElements(count, [&](std::size_t i) {
        const auto h = static_cast<ElementHandle>(i);
        replayHandle(h);
        store_.sweepAt(h).aging().holdToggling(config_.bti, ctx,
                                               duty_one, hours);
    });
    maybeCompactTimeline();
    ++state_epoch_;
}

} // namespace pentimento::fabric
