#include "fabric/device.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace pentimento::fabric {

Device::Device(DeviceConfig config) : config_(std::move(config))
{
    if (config_.tiles_x == 0 || config_.tiles_y == 0 ||
        config_.nodes_per_tile == 0) {
        util::fatal("Device: empty fabric grid");
    }
    if (config_.routing_pitch_ps <= 0.0 || config_.carry_pitch_ps <= 0.0) {
        util::fatal("Device: non-positive element pitch");
    }
    fresh_scale_ =
        config_.age_model.freshStressScale(config_.service_age_h);
}

RoutingElement
Device::makeElement(ResourceId id) const
{
    // Variation must be a pure function of (device seed, resource id)
    // so that materialisation order is irrelevant and the same board
    // rented twice presents identical silicon.
    util::Rng stream = util::Rng(config_.seed).split(id.key());
    phys::VariationSampler sampler(config_.variation, stream);
    const phys::ElementVariation var = sampler.sample();
    double pitch = config_.routing_pitch_ps;
    double coupling = 1.0;
    switch (id.type) {
      case ResourceType::CarryElement:
        pitch = config_.carry_pitch_ps;
        break;
      case ResourceType::Lut:
        pitch = config_.lut_pitch_ps;
        coupling = config_.lut_bti_coupling;
        break;
      default:
        break;
    }
    return RoutingElement(id, pitch, pitch, var,
                          fresh_scale_ * coupling);
}

RoutingElement &
Device::element(ResourceId id)
{
    const ElementHandle h = store_.ensure(
        id, [this](ResourceId rid) { return makeElement(rid); });
    return store_.at(h);
}

const RoutingElement *
Device::findElement(ResourceId id) const
{
    const ElementHandle h = store_.find(id.key());
    return h == kInvalidElement ? nullptr : &store_.at(h);
}

RouteSpec
Device::allocateRoute(const std::string &name, double target_ps)
{
    if (target_ps <= 0.0) {
        util::fatal("Device::allocateRoute: non-positive target delay");
    }
    const auto count = static_cast<std::size_t>(
        std::max(1.0, std::round(target_ps / config_.routing_pitch_ps)));
    RouteSpec spec;
    spec.name = name;
    spec.target_ps = target_ps;
    spec.elements.reserve(count);
    const std::uint64_t per_tile = config_.nodes_per_tile;
    const std::uint64_t capacity = static_cast<std::uint64_t>(
                                       config_.tiles_x) *
                                   config_.tiles_y * per_tile;
    if (alloc_cursor_ + count > capacity) {
        util::fatal("Device::allocateRoute: fabric exhausted");
    }
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t linear = alloc_cursor_++;
        ResourceId id;
        id.type = ResourceType::RoutingNode;
        id.index = static_cast<std::uint16_t>(linear % per_tile);
        const std::uint64_t tile = linear / per_tile;
        id.tile_x = static_cast<std::uint16_t>(tile % config_.tiles_x);
        id.tile_y = static_cast<std::uint16_t>(tile / config_.tiles_x);
        spec.elements.push_back(id);
    }
    return spec;
}

RouteSpec
Device::allocateCarryChain(const std::string &name, std::size_t taps)
{
    if (taps == 0) {
        util::fatal("Device::allocateCarryChain: zero taps");
    }
    RouteSpec spec;
    spec.name = name;
    spec.target_ps = static_cast<double>(taps) * config_.carry_pitch_ps;
    spec.elements.reserve(taps);
    // Carry chains occupy a dedicated column address space; they are
    // "uniformly placed and routed in consecutive physical locations"
    // (paper §4).
    for (std::size_t i = 0; i < taps; ++i) {
        const std::uint64_t linear = carry_cursor_++;
        ResourceId id;
        id.type = ResourceType::CarryElement;
        id.index = static_cast<std::uint16_t>(linear & 0xffff);
        id.tile_x = static_cast<std::uint16_t>((linear >> 16) & 0xffff);
        id.tile_y = static_cast<std::uint16_t>((linear >> 32) & 0xffff);
        spec.elements.push_back(id);
    }
    return spec;
}

RouteSpec
Device::allocateLutPath(const std::string &name, std::size_t cells)
{
    if (cells == 0) {
        util::fatal("Device::allocateLutPath: zero cells");
    }
    RouteSpec spec;
    spec.name = name;
    spec.target_ps = static_cast<double>(cells) * config_.lut_pitch_ps;
    spec.elements.reserve(cells);
    for (std::size_t i = 0; i < cells; ++i) {
        const std::uint64_t linear = lut_cursor_++;
        ResourceId id;
        id.type = ResourceType::Lut;
        id.index = static_cast<std::uint16_t>(linear & 0xffff);
        id.tile_x = static_cast<std::uint16_t>((linear >> 16) & 0xffff);
        id.tile_y = static_cast<std::uint16_t>((linear >> 32) & 0xffff);
        spec.elements.push_back(id);
    }
    return spec;
}

std::vector<ResourceId>
Device::materializedIds() const
{
    return store_.sortedIds();
}

Route
Device::bindRoute(const RouteSpec &spec)
{
    return Route(*this, spec);
}

void
Device::loadDesign(std::shared_ptr<const Design> design)
{
    if (!design) {
        util::fatal("Device::loadDesign: null design");
    }
    // Materialise every element the design configures so that aging
    // accrues from the moment the design starts running — a victim's
    // routes must burn in even if nothing ever reads their delay.
    for (const auto &[key, activity] : design->activityMap()) {
        (void)activity;
        element(ResourceId::fromKey(key));
    }
    design_ = std::move(design);
    ++state_epoch_;
}

void
Device::wipe()
{
    // Clears the configuration only. Aging — the pentimento — stays.
    design_.reset();
    ++state_epoch_;
}

void
Device::refreshActivityCache()
{
    if (design_ == nullptr) {
        activity_design_.reset();
        activity_dense_.clear();
        return;
    }
    if (activity_design_ == design_ &&
        activity_revision_ == design_->revision() &&
        activity_dense_.size() == store_.size()) {
        return;
    }
    activity_dense_.assign(store_.size(), ElementActivity{});
    for (const auto &[key, activity] : design_->activityMap()) {
        const ElementHandle h = store_.find(key);
        // Configured-but-unmaterialised elements (a design mutated in
        // place after loading) carry no aging state yet; once they
        // materialise, the slab-growth check above folds them in.
        if (h != kInvalidElement && h < activity_dense_.size()) {
            activity_dense_[h] = activity;
        }
    }
    activity_design_ = design_;
    activity_revision_ = design_->revision();
}

void
Device::sweepElements(std::size_t count,
                      const std::function<void(std::size_t)> &body)
{
    if (pool_ == nullptr || pool_->workerCount() == 0) {
        for (std::size_t i = 0; i < count; ++i) {
            body(i);
        }
        return;
    }
    // Aging is RNG-free and element-local, so the fan-out is
    // bit-identical to the serial loop for any worker count. No
    // design may be loaded concurrently (experiment phases alternate
    // serially), so the slab is stable for the duration.
    pool_->parallelFor(0, count, body);
}

void
Device::advance(double dt_h, phys::ThermalEnvironment &thermal)
{
    if (dt_h < 0.0) {
        util::fatal("Device::advance: negative time step");
    }
    const double power = design_ ? design_->powerW() : 0.0;
    const double temp_k = thermal.step(power, dt_h);
    refreshActivityCache();
    // Arrhenius factors depend only on (params, temp): one context
    // per step instead of two exp() calls per element.
    const phys::AgingStepContext ctx(config_.bti, temp_k);
    const ElementActivity kUnused{};
    const std::size_t count = store_.size();
    const std::size_t configured =
        std::min(count, activity_dense_.size());
    sweepElements(count, [&](std::size_t i) {
        const ElementActivity &activity =
            i < configured ? activity_dense_[i] : kUnused;
        store_.sweepAt(static_cast<ElementHandle>(i))
            .age(config_.bti, ctx, activity, dt_h);
    });
    elapsed_h_ += dt_h;
    ++state_epoch_;
}

void
Device::applyServiceWear(double hours, double duty_one)
{
    if (hours < 0.0) {
        util::fatal("Device::applyServiceWear: negative hours");
    }
    if (hours == 0.0) {
        return;
    }
    const phys::AgingStepContext ctx(config_.bti,
                                     config_.bti.reference_temp_k);
    const std::size_t count = store_.size();
    sweepElements(count, [&](std::size_t i) {
        store_.sweepAt(static_cast<ElementHandle>(i))
            .aging()
            .holdToggling(config_.bti, ctx, duty_one, hours);
    });
    ++state_epoch_;
}

} // namespace pentimento::fabric
