/**
 * @file
 * Bit-recovery classifiers for the two threat models.
 *
 * Threat Model 1 (design data): the attacker has a pre-burn baseline,
 * so the *direction of drift* of the smoothed ∆ps series reveals the
 * burn value — burn 1 (PBTI) drifts positive, burn 0 (NBTI) negative
 * (Figures 6-7).
 *
 * Threat Model 2 (user data): no baseline exists; the attacker parks
 * the routes at 0 and watches 25 h of recovery. Routes that held 1
 * show a marked negative recovery slope (fast PBTI recovery plus
 * fresh NBTI), routes that held 0 stay flat (Figure 8). Slopes are
 * normalised by route length and split with an Otsu-style two-cluster
 * threshold, with a separation guard for the degenerate all-same-bit
 * case.
 */

#ifndef PENTIMENTO_CORE_CLASSIFIER_HPP
#define PENTIMENTO_CORE_CLASSIFIER_HPP

#include <vector>

#include "core/experiment.hpp"

namespace pentimento::core {

/** The verdict for one route/bit. */
struct BitEstimate
{
    bool value = false;
    /** Decision statistic (drift ps for TM1, norm. slope for TM2). */
    double statistic = 0.0;
    /** Confidence in [0, 1] derived from the statistic's z-score. */
    double confidence = 0.0;
};

/** Scored classification of a whole experiment. */
struct ClassificationReport
{
    std::vector<BitEstimate> bits;
    std::size_t correct = 0;
    double accuracy = 0.0;
};

/** Score estimates against the experiment's ground truth. */
ClassificationReport score(std::vector<BitEstimate> bits,
                           const ExperimentResult &result);

/**
 * TM1 classifier: sign of the smoothed net drift.
 */
class ThreatModel1Classifier
{
  public:
    /** @param bandwidth_h smoothing bandwidth in hours */
    explicit ThreatModel1Classifier(double bandwidth_h = 25.0);

    /** Classify one route. */
    BitEstimate classifyRoute(const RouteRecord &record) const;

    /** Classify and score a full experiment. */
    ClassificationReport classify(const ExperimentResult &result) const;

  private:
    double bandwidth_h_;
};

/**
 * TM2 classifier: two-cluster split of length-normalised recovery
 * slopes.
 */
class ThreatModel2Classifier
{
  public:
    struct Config
    {
        /**
         * Minimum cluster separation, in within-cluster-sigma units,
         * for the two-cluster hypothesis to be accepted; below it all
         * bits are assigned to a single class by the sign test.
         */
        double separation_guard = 2.5;
        /**
         * Minimum cluster separation in units of the median per-route
         * slope standard error (the measurement noise floor).
         */
        double noise_guard = 2.2;
    };

    ThreatModel2Classifier();
    explicit ThreatModel2Classifier(Config config);

    /** Classify and score a full experiment. */
    ClassificationReport classify(const ExperimentResult &result) const;

    /** The length-normalised slope statistic for one route. */
    static double statistic(const RouteRecord &record);

  private:
    Config config_;
};

} // namespace pentimento::core

#endif // PENTIMENTO_CORE_CLASSIFIER_HPP
