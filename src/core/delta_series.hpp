/**
 * @file
 * ∆ps time series and the paper's post-processing pipeline (§5.2,
 * §6.1): center at the first sample, smooth with local-linear kernel
 * regression, extract trends.
 */

#ifndef PENTIMENTO_CORE_DELTA_SERIES_HPP
#define PENTIMENTO_CORE_DELTA_SERIES_HPP

#include <vector>

#include "util/stats.hpp"

namespace pentimento::core {

/**
 * One route's measured ∆ps over simulated hours.
 */
class DeltaSeries
{
  public:
    /** Append a measurement. Hours must be non-decreasing. */
    void addPoint(double hour, double delta_ps);

    /**
     * Insert a measurement at its sorted position (stable: a point
     * whose hour ties existing samples lands after them). Parallel
     * campaigns that merge per-worker partial series use this. When
     * hours are distinct — every sweep stamps a unique hour — the
     * resulting series, and every estimate derived from it, is a pure
     * function of the point *set*, not the insertion order. Points
     * sharing an hour keep arrival order, so order-sensitive
     * estimates (e.g. centeredAtFirst on a tied first hour) require
     * the caller to merge ties in a fixed order.
     */
    void insertPoint(double hour, double delta_ps);

    /** Number of samples. */
    std::size_t size() const { return hours_.size(); }

    bool empty() const { return hours_.empty(); }

    /** Measurement times. */
    const std::vector<double> &hours() const { return hours_; }

    /** Raw ∆ps values. */
    const std::vector<double> &values() const { return values_; }

    /**
     * Series re-expressed relative to its first sample — the paper
     * "centers the data to the point at hour zero; any deviation from
     * zero represents BTI degradation or recovery".
     */
    DeltaSeries centeredAtFirst() const;

    /**
     * Kernel-regression smoothed values at the sample hours
     * (statsmodels-equivalent local linear estimator).
     *
     * @param bandwidth kernel bandwidth in hours; <= 0 for the
     *        rule-of-thumb choice
     */
    std::vector<double> smoothed(double bandwidth = 0.0) const;

    /** OLS slope of raw values against hours, ps per hour. */
    double slopePerHour() const;

    /** Standard error of the OLS slope estimate (0 when n < 3). */
    double slopeStdErrorPerHour() const;

    /** Smoothed(last) − smoothed(first): the net drift in ps. */
    double netDriftPs(double bandwidth = 0.0) const;

    /** Mean of the raw values sampled in [h0, h1] (inclusive). */
    double meanBetweenHours(double h0, double h1) const;

    /** Mean of the last `count` raw samples. */
    double tailMean(std::size_t count) const;

    /** Standard deviation of residuals around the smoothed curve. */
    double residualSd(double bandwidth = 0.0) const;

  private:
    std::vector<double> hours_;
    std::vector<double> values_;
};

} // namespace pentimento::core

#endif // PENTIMENTO_CORE_DELTA_SERIES_HPP
