/**
 * @file
 * End-to-end attack facades (the flows of paper §2).
 *
 * These wrap the experiment plumbing into the two stories an attacker
 * actually executes:
 *
 *  - extractDesignData: Threat Model 1. Rent an encrypted marketplace
 *    AFI, interleave burn-in with TDC measurement on the known
 *    skeleton, and read the netlist constants out of the drift signs.
 *  - recoverUserData: Threat Model 2. Fingerprint a board, let the
 *    victim compute on it, flash-acquire the pool after release,
 *    re-identify the board by fingerprint, and recover the victim's
 *    runtime data from 25 h of BTI recovery.
 */

#ifndef PENTIMENTO_CORE_ATTACK_HPP
#define PENTIMENTO_CORE_ATTACK_HPP

#include <memory>
#include <string>
#include <vector>

#include "cloud/platform.hpp"
#include "core/classifier.hpp"
#include "core/experiment.hpp"

namespace pentimento::core {

/** A secret-bearing Target design plus its public skeleton. */
struct SecretBundle
{
    std::shared_ptr<fabric::TargetDesign> design;
    std::vector<fabric::RouteSpec> skeleton;
    std::vector<bool> secret;
};

/**
 * Build a design that stores a secret bitstring on dedicated routes
 * (netlist constants: a key, ML weights). One route per bit.
 *
 * @param device device whose allocator provides the skeleton
 * @param secret the confidential bits
 * @param route_ps nominal delay of each secret route
 * @param name design name
 * @param arith surrounding Arithmetic Heavy sizing
 */
SecretBundle makeSecretTarget(fabric::Device &device,
                              const std::vector<bool> &secret,
                              double route_ps, const std::string &name,
                              const fabric::ArithmeticHeavyConfig &arith =
                                  {});

/** Options for the TM1 facade. */
struct Tm1Options
{
    double burn_hours = 200.0;
    double measure_every_h = 1.0;
    tdc::TdcConfig tdc{};
    std::uint64_t seed = 99;
    /** Work pool for sweeps/aging (see Experiment1Config::pool). */
    util::ThreadPool *pool = nullptr;
};

/** Outcome of a TM1 extraction. */
struct Tm1Report
{
    std::string instance_id;
    ExperimentResult result;
    ClassificationReport classification;
    std::vector<bool> recovered_bits;
};

/**
 * Threat Model 1: extract Type A design data from a marketplace AFI.
 *
 * The AFI's design is loaded opaquely; the skeleton published with it
 * (Assumption 1) steers the sensors. Ground truth for scoring is read
 * from the marketplace record when the AFI wraps a TargetDesign.
 */
Tm1Report extractDesignData(cloud::CloudPlatform &platform,
                            const std::string &afi_id,
                            const Tm1Options &options = {});

/** Options for the TM2 facade. */
struct Tm2Options
{
    double victim_hours = 200.0;
    double recovery_hours = 25.0;
    double measure_every_h = 1.0;
    /** Attacker park value during recovery (§6.3 motivates 0). */
    bool park_value = false;
    /** Nominal delay of each secret route. */
    double route_ps = 5000.0;
    tdc::TdcConfig tdc{};
    std::uint64_t seed = 99;
    /** Work pool for sweeps/aging (see Experiment1Config::pool). */
    util::ThreadPool *pool = nullptr;
};

/** Outcome of a TM2 recovery. */
struct Tm2Report
{
    std::string victim_instance;
    std::string attacker_instance;
    /** Did fingerprint re-identification land on the victim board? */
    bool reacquired_same_board = false;
    double fingerprint_similarity = 0.0;
    /** Boards the flash acquisition had to rent. */
    std::size_t flash_rented = 0;
    ExperimentResult result;
    ClassificationReport classification;
    std::vector<bool> recovered_bits;
};

/**
 * Threat Model 2: recover Type B user data from a prior tenant.
 *
 * Executes the full story: reconnaissance fingerprint, victim
 * tenancy holding `secret` on its routes, release + provider wipe,
 * flash acquisition, fingerprint re-identification, 25 h recovery
 * measurement, classification.
 */
Tm2Report recoverUserData(cloud::CloudPlatform &platform,
                          const std::vector<bool> &secret,
                          const Tm2Options &options = {});

} // namespace pentimento::core

#endif // PENTIMENTO_CORE_ATTACK_HPP
