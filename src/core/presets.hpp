/**
 * @file
 * Calibrated device/platform presets matching the paper's testbeds.
 */

#ifndef PENTIMENTO_CORE_PRESETS_HPP
#define PENTIMENTO_CORE_PRESETS_HPP

#include <cstdint>

#include "cloud/platform.hpp"
#include "fabric/device.hpp"

namespace pentimento::core {

/**
 * A factory-new ZCU102 (Zynq UltraScale+), Experiment 1's board:
 * zero service age, full fresh-BTI susceptibility.
 */
fabric::DeviceConfig zcu102New(std::uint64_t seed = 1);

/**
 * One AWS F1 card's silicon (Virtex UltraScale+ xcvu9p). Service age
 * is set by the platform per card.
 */
fabric::DeviceConfig awsF1Silicon(std::uint64_t seed = 1);

/**
 * The eu-west-2 F1 region of Experiments 2-3: a small fleet of
 * multi-year-old cards, OU ambient around 45 C, 85 W cap,
 * most-recently-released allocation.
 */
cloud::PlatformConfig awsF1Region(std::uint64_t seed = 1234);

} // namespace pentimento::core

#endif // PENTIMENTO_CORE_PRESETS_HPP
