/**
 * @file
 * Key-recovery hardness analysis from per-bit estimates.
 *
 * The classifiers return a value and a confidence per bit. For a
 * cryptographic key, partial recovery is already fatal if the
 * attacker can brute-force the residue: sorting bits by confidence
 * and enumerating the least-confident ones turns "85% of bits
 * correct" into "the key falls in 2^k guesses". This module computes
 * that k and the guessing-entropy summary used by the examples and
 * EXPERIMENTS.md.
 */

#ifndef PENTIMENTO_CORE_KEYRANK_HPP
#define PENTIMENTO_CORE_KEYRANK_HPP

#include <cstddef>
#include <vector>

#include "core/classifier.hpp"

namespace pentimento::core {

/** Key-hardness summary for a set of recovered bits. */
struct KeyRankReport
{
    /** Bits in the key. */
    std::size_t key_bits = 0;
    /**
     * Shannon entropy (bits) remaining in the attacker's posterior:
     * the sum of per-bit binary entropies implied by the confidences.
     */
    double residual_entropy_bits = 0.0;
    /**
     * Bits the attacker should enumerate (least-confident first) so
     * that the chance all *other* bits are correct reaches the
     * target success probability.
     */
    std::size_t brute_force_bits = 0;
    /** Success probability achieved at that budget. */
    double success_probability = 0.0;
};

/**
 * Analyse a classification: how close is the attacker to the full
 * key?
 *
 * @param bits per-bit estimates (value + confidence)
 * @param target_success desired probability that the non-enumerated
 *        bits are all correct
 */
KeyRankReport analyzeKeyRank(const std::vector<BitEstimate> &bits,
                             double target_success = 0.9);

/** Binary entropy of probability p, in bits. */
double binaryEntropy(double p);

} // namespace pentimento::core

#endif // PENTIMENTO_CORE_KEYRANK_HPP
