#include "core/keyrank.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace pentimento::core {

double
binaryEntropy(double p)
{
    if (p <= 0.0 || p >= 1.0) {
        return 0.0;
    }
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

KeyRankReport
analyzeKeyRank(const std::vector<BitEstimate> &bits,
               double target_success)
{
    if (target_success <= 0.0 || target_success >= 1.0) {
        util::fatal("analyzeKeyRank: target outside (0,1)");
    }
    KeyRankReport report;
    report.key_bits = bits.size();
    if (bits.empty()) {
        report.success_probability = 1.0;
        return report;
    }

    // Confidence c maps to an estimated per-bit correctness
    // probability of (1 + c) / 2: c = 0 is a coin flip, c = 1 is
    // certain.
    std::vector<double> p_correct;
    p_correct.reserve(bits.size());
    for (const BitEstimate &bit : bits) {
        const double c = std::clamp(bit.confidence, 0.0, 1.0);
        const double p = 0.5 * (1.0 + c);
        p_correct.push_back(p);
        report.residual_entropy_bits += binaryEntropy(p);
    }

    // Enumerate the least-confident bits until the joint probability
    // of the remaining bits clears the target.
    std::sort(p_correct.begin(), p_correct.end()); // ascending
    double joint = 1.0;
    for (const double p : p_correct) {
        joint *= p;
    }
    std::size_t enumerated = 0;
    double success = joint;
    while (success < target_success && enumerated < p_correct.size()) {
        // Removing a bit from the "must be right" set divides the
        // joint probability by its correctness probability.
        success /= p_correct[enumerated];
        ++enumerated;
    }
    report.brute_force_bits = enumerated;
    report.success_probability = success;
    return report;
}

} // namespace pentimento::core
