#include "core/attack.hpp"

#include <algorithm>

#include "cloud/fingerprint.hpp"
#include "util/logging.hpp"

namespace pentimento::core {

SecretBundle
makeSecretTarget(fabric::Device &device, const std::vector<bool> &secret,
                 double route_ps, const std::string &name,
                 const fabric::ArithmeticHeavyConfig &arith)
{
    if (secret.empty()) {
        util::fatal("makeSecretTarget: empty secret");
    }
    SecretBundle bundle;
    bundle.secret = secret;
    bundle.skeleton.reserve(secret.size());
    for (std::size_t bit = 0; bit < secret.size(); ++bit) {
        bundle.skeleton.push_back(device.allocateRoute(
            name + "/secret[" + std::to_string(bit) + "]", route_ps));
    }
    bundle.design = std::make_shared<fabric::TargetDesign>(
        name, bundle.skeleton, secret, arith);
    return bundle;
}

Tm1Report
extractDesignData(cloud::CloudPlatform &platform,
                  const std::string &afi_id, const Tm1Options &options)
{
    const cloud::AfiRecord &record =
        platform.marketplace().record(afi_id);
    if (record.skeleton.empty()) {
        util::fatal("extractDesignData: AFI '" + afi_id +
                    "' has no public skeleton (Assumption 1 unmet)");
    }

    const auto rented = platform.rent();
    if (!rented) {
        util::fatal("extractDesignData: region exhausted");
    }
    Tm1Report report;
    report.instance_id = *rented;
    cloud::FpgaInstance &inst = platform.instance(*rented);
    fabric::Device &device = inst.device();
    device.setWorkPool(options.pool);

    auto measure = std::make_shared<tdc::MeasureDesign>(
        device, record.skeleton, options.tdc);
    if (!platform.loadDesign(*rented, measure).empty()) {
        util::fatal("extractDesignData: measure design failed DRC");
    }
    measure->calibrateAll(inst.dieTempK(), inst.rng(), options.pool);

    // Ground truth for scoring (never consulted by the attack path).
    const auto *target =
        dynamic_cast<const fabric::TargetDesign *>(record.design.get());

    std::vector<DeltaSeries> raw(record.skeleton.size());
    double measure_seconds = 0.0;
    std::size_t sweeps = 0;
    const auto measureNow = [&](double hour) {
        if (!platform.loadDesign(*rented, measure).empty()) {
            util::fatal("extractDesignData: measure DRC failure");
        }
        platform.advanceHours(kMeasureSettleHours);
        const tdc::MeasurementSweep sweep = measure->measureAll(
            inst.dieTempK(), inst.rng(), options.pool);
        for (std::size_t i = 0; i < raw.size(); ++i) {
            raw[i].addPoint(hour, sweep.per_route[i].deltaPs());
        }
        measure_seconds += sweep.wall_seconds;
        ++sweeps;
    };
    measureNow(0.0);

    double hour = 0.0;
    while (hour < options.burn_hours - 1e-9) {
        const double dt = std::min(options.measure_every_h,
                                   options.burn_hours - hour);
        if (!platform.loadDesign(*rented, record.design).empty()) {
            util::fatal("extractDesignData: AFI failed DRC");
        }
        platform.advanceHours(
            std::max(0.0, dt - kMeasureSettleHours));
        hour += dt;
        measureNow(hour);
    }
    platform.release(*rented);
    device.setWorkPool(nullptr);

    report.result.condition_hours = hour;
    report.result.measure_seconds = measure_seconds;
    report.result.sweeps = sweeps;
    report.result.routes.reserve(record.skeleton.size());
    for (std::size_t i = 0; i < record.skeleton.size(); ++i) {
        RouteRecord route;
        route.name = record.skeleton[i].name;
        route.target_ps = record.skeleton[i].target_ps;
        route.burn_value =
            target != nullptr && i < target->routeCount()
                ? target->burnValue(i)
                : false;
        route.series = raw[i].centeredAtFirst();
        report.result.routes.push_back(std::move(route));
    }

    report.classification =
        ThreatModel1Classifier().classify(report.result);
    report.recovered_bits.reserve(report.classification.bits.size());
    for (const BitEstimate &bit : report.classification.bits) {
        report.recovered_bits.push_back(bit.value);
    }
    return report;
}

Tm2Report
recoverUserData(cloud::CloudPlatform &platform,
                const std::vector<bool> &secret,
                const Tm2Options &options)
{
    Tm2Report report;
    cloud::Fingerprinter fingerprinter;

    // ---- Reconnaissance: fingerprint the board about to be handed
    // to the victim (cartography / co-location preparation).
    const auto recon = platform.rent();
    if (!recon) {
        util::fatal("recoverUserData: region exhausted");
    }
    const cloud::Fingerprint target_fp = fingerprinter.probe(
        platform.instance(*recon), "recon:" + *recon);
    platform.release(*recon);

    // ---- Victim tenancy: loads the secret, computes, releases.
    const auto victim = platform.rent();
    if (!victim) {
        util::fatal("recoverUserData: region exhausted for victim");
    }
    report.victim_instance = *victim;
    cloud::FpgaInstance &victim_inst = platform.instance(*victim);
    SecretBundle bundle = makeSecretTarget(
        victim_inst.device(), secret, options.route_ps, "victim_design");
    if (!platform.loadDesign(*victim, bundle.design).empty()) {
        util::fatal("recoverUserData: victim design failed DRC");
    }
    platform.advanceHours(options.victim_hours);
    platform.release(*victim);

    // ---- Flash acquisition + fingerprint re-identification.
    const std::vector<std::string> grabbed = platform.rentAll();
    report.flash_rented = grabbed.size();
    if (grabbed.empty()) {
        util::fatal("recoverUserData: flash acquisition got nothing");
    }
    std::string best_id = grabbed.front();
    double best_sim = -2.0;
    for (const std::string &id : grabbed) {
        const cloud::Fingerprint fp =
            fingerprinter.probe(platform.instance(id), "flash:" + id);
        const double sim =
            cloud::Fingerprinter::similarity(fp, target_fp);
        if (sim > best_sim) {
            best_sim = sim;
            best_id = id;
        }
    }
    for (const std::string &id : grabbed) {
        if (id != best_id) {
            platform.release(id);
        }
    }
    report.attacker_instance = best_id;
    report.fingerprint_similarity = best_sim;
    report.reacquired_same_board = best_id == report.victim_instance;

    // ---- Recovery measurement on the re-acquired board.
    cloud::FpgaInstance &att_inst = platform.instance(best_id);
    fabric::Device &device = att_inst.device();
    device.setWorkPool(options.pool);
    auto measure = std::make_shared<tdc::MeasureDesign>(
        device, bundle.skeleton, options.tdc);
    if (!platform.loadDesign(best_id, measure).empty()) {
        util::fatal("recoverUserData: measure design failed DRC");
    }
    measure->calibrateAll(att_inst.dieTempK(), att_inst.rng(),
                          options.pool);

    auto park = std::make_shared<fabric::Design>("attacker_park");
    for (const fabric::RouteSpec &spec : bundle.skeleton) {
        park->setRouteValue(spec, options.park_value);
    }
    park->setPowerW(2.0);

    std::vector<DeltaSeries> raw(bundle.skeleton.size());
    double measure_seconds = 0.0;
    std::size_t sweeps = 0;
    const auto measureNow = [&](double hour) {
        if (!platform.loadDesign(best_id, measure).empty()) {
            util::fatal("recoverUserData: measure DRC failure");
        }
        platform.advanceHours(kMeasureSettleHours);
        const tdc::MeasurementSweep sweep = measure->measureAll(
            att_inst.dieTempK(), att_inst.rng(), options.pool);
        for (std::size_t i = 0; i < raw.size(); ++i) {
            raw[i].addPoint(hour, sweep.per_route[i].deltaPs());
        }
        measure_seconds += sweep.wall_seconds;
        ++sweeps;
    };
    measureNow(options.victim_hours);

    double observed = 0.0;
    while (observed < options.recovery_hours - 1e-9) {
        const double dt = std::min(options.measure_every_h,
                                   options.recovery_hours - observed);
        if (!platform.loadDesign(best_id, park).empty()) {
            util::fatal("recoverUserData: park design failed DRC");
        }
        platform.advanceHours(
            std::max(0.0, dt - kMeasureSettleHours));
        observed += dt;
        measureNow(options.victim_hours + observed);
    }
    platform.release(best_id);
    device.setWorkPool(nullptr);

    report.result.condition_hours = options.victim_hours + observed;
    report.result.measure_seconds = measure_seconds;
    report.result.sweeps = sweeps;
    for (std::size_t i = 0; i < bundle.skeleton.size(); ++i) {
        RouteRecord route;
        route.name = bundle.skeleton[i].name;
        route.target_ps = bundle.skeleton[i].target_ps;
        route.burn_value = secret[i];
        route.series = raw[i].centeredAtFirst();
        report.result.routes.push_back(std::move(route));
    }

    report.classification =
        ThreatModel2Classifier().classify(report.result);
    report.recovered_bits.reserve(report.classification.bits.size());
    for (const BitEstimate &bit : report.classification.bits) {
        report.recovered_bits.push_back(bit.value);
    }
    return report;
}

} // namespace pentimento::core
