#include "core/delta_series.hpp"

#include <algorithm>

#include "util/kernel_regression.hpp"
#include "util/logging.hpp"

namespace pentimento::core {

void
DeltaSeries::addPoint(double hour, double delta_ps)
{
    if (!hours_.empty() && hour < hours_.back()) {
        util::fatal("DeltaSeries::addPoint: hours must be monotone");
    }
    hours_.push_back(hour);
    values_.push_back(delta_ps);
}

void
DeltaSeries::insertPoint(double hour, double delta_ps)
{
    const auto pos =
        std::upper_bound(hours_.begin(), hours_.end(), hour);
    const std::size_t idx =
        static_cast<std::size_t>(pos - hours_.begin());
    hours_.insert(pos, hour);
    values_.insert(values_.begin() +
                       static_cast<std::vector<double>::difference_type>(
                           idx),
                   delta_ps);
}

DeltaSeries
DeltaSeries::centeredAtFirst() const
{
    DeltaSeries out;
    if (values_.empty()) {
        return out;
    }
    const double origin = values_.front();
    out.hours_ = hours_;
    out.values_ = util::centered(values_, origin);
    return out;
}

std::vector<double>
DeltaSeries::smoothed(double bandwidth) const
{
    if (values_.empty()) {
        return {};
    }
    if (values_.size() < 3) {
        return values_;
    }
    return util::kernelSmooth(hours_, values_, bandwidth);
}

double
DeltaSeries::slopePerHour() const
{
    if (values_.size() < 2) {
        return 0.0;
    }
    return util::fitLine(hours_, values_).slope;
}

double
DeltaSeries::slopeStdErrorPerHour() const
{
    if (values_.size() < 3) {
        return 0.0;
    }
    return util::fitLine(hours_, values_).slope_stderr;
}

double
DeltaSeries::netDriftPs(double bandwidth) const
{
    if (values_.empty()) {
        return 0.0;
    }
    const std::vector<double> smooth = smoothed(bandwidth);
    return smooth.back() - smooth.front();
}

double
DeltaSeries::meanBetweenHours(double h0, double h1) const
{
    util::RunningStats stats;
    for (std::size_t i = 0; i < hours_.size(); ++i) {
        if (hours_[i] >= h0 && hours_[i] <= h1) {
            stats.add(values_[i]);
        }
    }
    return stats.mean();
}

double
DeltaSeries::tailMean(std::size_t count) const
{
    if (values_.empty()) {
        return 0.0;
    }
    util::RunningStats stats;
    const std::size_t start =
        values_.size() > count ? values_.size() - count : 0;
    for (std::size_t i = start; i < values_.size(); ++i) {
        stats.add(values_[i]);
    }
    return stats.mean();
}

double
DeltaSeries::residualSd(double bandwidth) const
{
    if (values_.size() < 4) {
        return 0.0;
    }
    const std::vector<double> smooth = smoothed(bandwidth);
    std::vector<double> residuals(values_.size());
    for (std::size_t i = 0; i < values_.size(); ++i) {
        residuals[i] = values_[i] - smooth[i];
    }
    return util::stddev(residuals);
}

} // namespace pentimento::core
