#include "core/presets.hpp"

#include "util/units.hpp"

namespace pentimento::core {

fabric::DeviceConfig
zcu102New(std::uint64_t seed)
{
    fabric::DeviceConfig config;
    config.family = "xczu9eg";
    config.tiles_x = 192;
    config.tiles_y = 192;
    config.service_age_h = 0.0;
    config.seed = seed;
    return config;
}

fabric::DeviceConfig
awsF1Silicon(std::uint64_t seed)
{
    fabric::DeviceConfig config;
    config.family = "xcvu9p";
    config.tiles_x = 256;
    config.tiles_y = 256;
    config.seed = seed;
    // Age is assigned per card by the platform.
    config.service_age_h = 30000.0;
    return config;
}

cloud::PlatformConfig
awsF1Region(std::uint64_t seed)
{
    cloud::PlatformConfig config;
    config.region = "eu-west-2";
    config.fleet_size = 8;
    config.device_template = awsF1Silicon();
    // The region opened ~4 years before Experiment 2 (paper footnote);
    // cards span roughly two to four years of service.
    config.min_service_age_h = 18000.0;
    config.max_service_age_h = 36000.0;
    config.ambient.mean_k = util::celsiusToKelvin(45.0);
    config.ambient.sigma_k = 1.6;
    config.ambient.reversion_per_h = 0.25;
    config.max_power_w = 85.0;
    config.policy = cloud::AllocationPolicy::MostRecentlyReleased;
    config.quarantine_hours = 0.0;
    config.seed = seed;
    return config;
}

} // namespace pentimento::core
