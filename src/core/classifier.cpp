#include "core/classifier.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace pentimento::core {

namespace {

/** Map a z-score magnitude to a confidence in [0, 1). */
double
zToConfidence(double z)
{
    return std::erf(std::abs(z) / std::sqrt(2.0));
}

} // namespace

ClassificationReport
score(std::vector<BitEstimate> bits, const ExperimentResult &result)
{
    if (bits.size() != result.routes.size()) {
        util::fatal("score: estimate/route arity mismatch");
    }
    ClassificationReport report;
    report.bits = std::move(bits);
    for (std::size_t i = 0; i < report.bits.size(); ++i) {
        if (report.bits[i].value == result.routes[i].burn_value) {
            ++report.correct;
        }
    }
    report.accuracy = report.bits.empty()
                          ? 0.0
                          : static_cast<double>(report.correct) /
                                static_cast<double>(report.bits.size());
    return report;
}

ThreatModel1Classifier::ThreatModel1Classifier(double bandwidth_h)
    : bandwidth_h_(bandwidth_h)
{
    if (bandwidth_h_ <= 0.0) {
        util::fatal("ThreatModel1Classifier: non-positive bandwidth");
    }
}

BitEstimate
ThreatModel1Classifier::classifyRoute(const RouteRecord &record) const
{
    BitEstimate estimate;
    // The series is centered at the pre-burn baseline, so the raw
    // tail mean IS the accumulated drift — no smoothing bias at the
    // steep early segment.
    const std::size_t tail =
        std::max<std::size_t>(3, record.series.size() / 10);
    const double drift = record.series.tailMean(tail);
    estimate.statistic = drift;
    estimate.value = drift > 0.0;
    const double noise = record.series.residualSd(bandwidth_h_);
    if (noise > 0.0) {
        const double se =
            noise * std::sqrt(1.0 + 1.0 / static_cast<double>(tail));
        estimate.confidence = zToConfidence(drift / se);
    } else {
        estimate.confidence = drift == 0.0 ? 0.0 : 1.0;
    }
    return estimate;
}

ClassificationReport
ThreatModel1Classifier::classify(const ExperimentResult &result) const
{
    std::vector<BitEstimate> bits;
    bits.reserve(result.routes.size());
    for (const RouteRecord &record : result.routes) {
        bits.push_back(classifyRoute(record));
    }
    return score(std::move(bits), result);
}

ThreatModel2Classifier::ThreatModel2Classifier()
    : ThreatModel2Classifier(Config{})
{
}

ThreatModel2Classifier::ThreatModel2Classifier(Config config)
    : config_(config)
{
}

double
ThreatModel2Classifier::statistic(const RouteRecord &record)
{
    // Recovery slope per hour, normalised per nanosecond of route so
    // different delay groups share one decision axis.
    return record.series.slopePerHour() / (record.target_ps / 1000.0);
}

ClassificationReport
ThreatModel2Classifier::classify(const ExperimentResult &result) const
{
    const std::size_t n = result.routes.size();
    if (n == 0) {
        return {};
    }

    // Cluster within same-length groups: the attacker knows each
    // route's length from the skeleton, and both the recovery signal
    // and the TDC noise scale differently with length, so mixing
    // groups on one axis would let short-route noise blur long-route
    // separations. Raw (un-normalised) slopes are used within a
    // group.
    std::map<double, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < n; ++i) {
        groups[result.routes[i].target_ps].push_back(i);
    }

    std::vector<BitEstimate> bits(n);
    for (const auto &[target_ps, indices] : groups) {
        (void)target_ps;
        std::vector<double> slopes;
        std::vector<double> slope_ses;
        slopes.reserve(indices.size());
        for (const std::size_t i : indices) {
            slopes.push_back(result.routes[i].series.slopePerHour());
            slope_ses.push_back(
                result.routes[i].series.slopeStdErrorPerHour());
        }
        std::sort(slope_ses.begin(), slope_ses.end());
        const double noise_floor =
            slope_ses[slope_ses.size() / 2]; // median slope s.e.

        bool two_clusters = slopes.size() >= 4;
        double threshold = 0.0;
        double spread = 1e-12;
        if (two_clusters) {
            threshold = util::otsuThreshold(slopes);
            std::vector<double> lo, hi;
            for (const double s : slopes) {
                (s <= threshold ? lo : hi).push_back(s);
            }
            two_clusters = !lo.empty() && !hi.empty();
            if (two_clusters) {
                spread = std::max(
                    {util::stddev(lo), util::stddev(hi), 1e-12});
                const double separation =
                    util::mean(hi) - util::mean(lo);
                // Accept the two-cluster hypothesis only when the
                // split beats both the within-cluster spread and the
                // per-route slope measurement noise; Otsu happily
                // splits pure noise otherwise.
                two_clusters =
                    separation > config_.separation_guard * spread &&
                    separation >
                        config_.noise_guard * noise_floor;
            }
        }

        if (two_clusters) {
            for (std::size_t k = 0; k < indices.size(); ++k) {
                BitEstimate &bit = bits[indices[k]];
                bit.statistic = slopes[k];
                // Recovery (strongly negative slope) marks a prior 1.
                bit.value = slopes[k] <= threshold;
                bit.confidence =
                    zToConfidence((slopes[k] - threshold) / spread);
            }
        } else {
            // Degenerate group: all routes behave alike. Decide the
            // common value from the grand mean: a clearly negative
            // slope means every bit was 1, otherwise 0.
            const double grand = util::mean(slopes);
            const double sd = std::max(util::stddev(slopes), 1e-12);
            const double se =
                sd / std::sqrt(static_cast<double>(slopes.size()));
            const bool all_one = grand < -2.0 * se;
            for (std::size_t k = 0; k < indices.size(); ++k) {
                BitEstimate &bit = bits[indices[k]];
                bit.statistic = slopes[k];
                bit.value = all_one;
                bit.confidence = zToConfidence(grand / se) * 0.5;
            }
        }
    }
    return score(std::move(bits), result);
}

} // namespace pentimento::core
