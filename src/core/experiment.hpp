/**
 * @file
 * The paper's three experiments (§5-6).
 *
 * Each experiment interleaves the Calibration, Condition and
 * Measurement phases of §5.2 over simulated hours:
 *
 *  - Experiment 1 (lab): a factory-new ZCU102 in a 60 C oven; 64
 *    routes in four delay groups burn a random X for 200 h, then
 *    recover under X̄ for 200 h, measured hourly (Figure 6).
 *  - Experiment 2 (cloud, TM1): the same route groups on a rented,
 *    multi-year-old AWS F1 card; 200 h of burn with hourly
 *    measurement interleaved by the attacker (Figure 7).
 *  - Experiment 3 (cloud, TM2): a victim burns X for 200 h
 *    uninterrupted and releases; the attacker re-acquires the board,
 *    parks the routes at logic 0 and watches 25 h of recovery
 *    (Figure 8).
 *
 * Results are centered ∆ps series per route plus ground-truth burn
 * values for scoring.
 */

#ifndef PENTIMENTO_CORE_EXPERIMENT_HPP
#define PENTIMENTO_CORE_EXPERIMENT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/platform.hpp"
#include "core/delta_series.hpp"
#include "core/presets.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "mitigation/strategy.hpp"
#include "tdc/measure_design.hpp"
#include "util/parallel.hpp"

namespace pentimento::core {

/**
 * Thermal settle time before each measurement sweep, hours (54 s ≈
 * the paper's 52 s measurement). The die relaxes to the Measure
 * design's power level, so the baseline and every later sweep see the
 * same thermal operating point; without this, the Target design's
 * tens of watts would alias into ∆ps through the rise/fall
 * temperature-coefficient mismatch.
 */
inline constexpr double kMeasureSettleHours = 0.015;

/** One set of identically-sized routes under test. */
struct RouteGroup
{
    double target_ps = 1000.0;
    int count = 16;
};

/** The paper's standard 64-route layout (16 each of 1/2/5/10 ns). */
std::vector<RouteGroup> paperRouteGroups();

/**
 * Observation/cancellation hook for long experiment loops.
 *
 * onSweep() fires after every measurement sweep with the raw
 * (uncentered) per-route ∆ps of that sweep; returning false asks the
 * experiment to stop, which it honours by throwing
 * util::CancelledError at that checkpoint. The server layer uses this
 * both to stream incremental results and to enforce per-request
 * deadlines cooperatively — long loops never need to be killed from
 * outside. Purely-conditioning loops with no sweeps (tenancy churn)
 * call onSweep with n_routes == 0 once per tenancy so they stay
 * cancellable too.
 */
class SweepObserver
{
  public:
    virtual ~SweepObserver() = default;

    /** @return false to cancel the run at this checkpoint. */
    virtual bool onSweep(std::size_t sweep_index, double hour,
                         const double *delta_ps,
                         std::size_t n_routes) = 0;
};

/** Result record for one route under test. */
struct RouteRecord
{
    std::string name;
    double target_ps = 0.0;
    /** Ground-truth burn bit (opaque to the attacker; for scoring). */
    bool burn_value = false;
    /** Centered ∆ps series. */
    DeltaSeries series;
};

/** Output of one experiment run. */
struct ExperimentResult
{
    std::vector<RouteRecord> routes;
    /** Hours spent in the Condition phase. */
    double condition_hours = 0.0;
    /** Total modeled Measurement wall-clock, seconds. */
    double measure_seconds = 0.0;
    /** Number of measurement sweeps taken. */
    std::size_t sweeps = 0;

    /** Fraction of experiment time spent measuring (paper: ~1.4%). */
    double measurementFraction() const;

    /** Mean wall-clock of one sweep (paper: 33-52 s). */
    double secondsPerSweep() const;

    /** Indices of the routes belonging to a delay group. */
    std::vector<std::size_t> groupIndices(double target_ps) const;
};

/** Experiment 1 configuration (lab, Figure 6). */
struct Experiment1Config
{
    std::vector<RouteGroup> groups = paperRouteGroups();
    double burn_hours = 200.0;
    double recovery_hours = 200.0;
    double oven_temp_c = 60.0;
    double measure_every_h = 1.0;
    fabric::DeviceConfig device = zcu102New();
    fabric::ArithmeticHeavyConfig arith{};
    tdc::TdcConfig tdc{};
    std::uint64_t seed = 2023;
    /** Optional user mitigation applied during the burn (ablations). */
    mitigation::MitigationStrategy *strategy = nullptr;
    /**
     * Optional work pool: element aging and measurement sweeps fan
     * out across its workers. Same seed produces bit-identical
     * results for any worker count (nullptr = serial).
     */
    util::ThreadPool *pool = nullptr;
    /** Optional per-sweep observation/cancellation hook. */
    SweepObserver *observer = nullptr;
};

/** Run Experiment 1 on a local device. */
ExperimentResult runExperiment1(const Experiment1Config &config);

/** Experiment 2 configuration (cloud, TM1, Figure 7). */
struct Experiment2Config
{
    std::vector<RouteGroup> groups = paperRouteGroups();
    double burn_hours = 200.0;
    double measure_every_h = 1.0;
    cloud::PlatformConfig platform = awsF1Region();
    fabric::ArithmeticHeavyConfig arith{}; // 3896 DSPs, ~63 W
    tdc::TdcConfig tdc{};
    std::uint64_t seed = 2023;
    mitigation::MitigationStrategy *strategy = nullptr;
    /** Work pool (see Experiment1Config::pool). */
    util::ThreadPool *pool = nullptr;
    /** Optional per-sweep observation/cancellation hook. */
    SweepObserver *observer = nullptr;
};

/** Run Experiment 2 against a cloud platform. */
ExperimentResult runExperiment2(const Experiment2Config &config);

/** Experiment 3 configuration (cloud, TM2, Figure 8). */
struct Experiment3Config
{
    std::vector<RouteGroup> groups = paperRouteGroups();
    /** Victim burn, uninstrumented (no attacker access). */
    double burn_hours = 200.0;
    /** Attacker's recovery observation window. */
    double recovery_hours = 25.0;
    double measure_every_h = 1.0;
    /**
     * Hours the attacker waits between the victim's release and their
     * own rental (e.g. to outlast a provider quarantine). The board
     * sits in the pool recovering — or being scrubbed — meanwhile.
     */
    double attacker_wait_h = 0.0;
    /** Value the attacker parks the routes at (§6.3 chooses 0). */
    bool park_value = false;
    cloud::PlatformConfig platform = awsF1Region();
    fabric::ArithmeticHeavyConfig arith{};
    tdc::TdcConfig tdc{};
    std::uint64_t seed = 2023;
    /** Optional victim-side mitigation (incl. its epilogue). */
    mitigation::MitigationStrategy *strategy = nullptr;
    /** Work pool (see Experiment1Config::pool). */
    util::ThreadPool *pool = nullptr;
    /** Optional per-sweep observation/cancellation hook. */
    SweepObserver *observer = nullptr;
};

/** Run Experiment 3 against a cloud platform. */
ExperimentResult runExperiment3(const Experiment3Config &config);

/**
 * Deterministic single-board tenancy churn: the workload the activity
 * journal exists for. A sequence of tenancies each allocates fresh
 * routes, burns a random word (with an optional in-place burn-value
 * rotation mid-tenancy, mitigation-style), releases, and lets the
 * board idle — and nobody measures anything until the very end, when
 * the last `observe_last` tenancies' routes are bound and read. The
 * run is a pure function of the config (every draw comes from `seed`),
 * so its outputs serve as regression goldens, as the eager-vs-lazy
 * equivalence fixture (set device.eager_materialisation and compare
 * bitwise), and as the BM_TenancyTurnover microbench body.
 */
struct TenancyChurnConfig
{
    /** Completed tenancies. */
    std::size_t tenancies = 16;
    std::size_t routes_per_tenant = 4;
    double route_target_ps = 1000.0;
    /** Arithmetic-heavy filler DSPs per tenant design. */
    int dsp_count = 32;
    /** Tenancy length is uniform in [min, max] whole hours. */
    double burn_hours_min = 24.0;
    double burn_hours_max = 96.0;
    /** Pool idle time between tenancies (recovery), hours. */
    double idle_hours = 24.0;
    /** Rotate every burn value halfway through each tenancy (an
     *  in-place design mutation, exercising mid-tenancy flips). */
    bool midflip = true;
    /** Die temperature while a tenant computes / while idle (K). */
    double busy_temp_k = 333.15;
    double idle_temp_k = 318.15;
    /** Bind and read the routes of the last N tenancies at the end
     *  (0 = never observe anything: the pure-churn benchmark form). */
    std::size_t observe_last = 2;
    std::uint64_t seed = 7321;
    fabric::DeviceConfig device{};
    /** Optional per-tenancy cancellation hook (n_routes == 0). */
    SweepObserver *observer = nullptr;
};

/** Output of a tenancy-churn run. */
struct TenancyChurnResult
{
    /** Rising/falling aged delay (ps) per observed route, tenancy
     *  order then route order. */
    std::vector<double> observed_delays_ps;
    /** Materialised elements after the final observation. */
    std::size_t materialized = 0;
    /** Configured-but-unobserved elements still journal-deferred. */
    std::size_t journaled = 0;
    /** Simulated hours elapsed. */
    double elapsed_h = 0.0;
};

/** Run the tenancy-churn scenario. */
TenancyChurnResult runTenancyChurn(const TenancyChurnConfig &config);

} // namespace pentimento::core

#endif // PENTIMENTO_CORE_EXPERIMENT_HPP
