#include "core/experiment.hpp"

#include <algorithm>
#include <functional>
#include <memory>

#include "phys/thermal.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace pentimento::core {

std::vector<RouteGroup>
paperRouteGroups()
{
    return {{1000.0, 16}, {2000.0, 16}, {5000.0, 16}, {10000.0, 16}};
}

double
ExperimentResult::measurementFraction() const
{
    const double condition_seconds =
        util::hoursToSeconds(condition_hours);
    if (condition_seconds + measure_seconds <= 0.0) {
        return 0.0;
    }
    return measure_seconds / (condition_seconds + measure_seconds);
}

double
ExperimentResult::secondsPerSweep() const
{
    if (sweeps == 0) {
        return 0.0;
    }
    return measure_seconds / static_cast<double>(sweeps);
}

std::vector<std::size_t>
ExperimentResult::groupIndices(double target_ps) const
{
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < routes.size(); ++i) {
        if (routes[i].target_ps == target_ps) {
            indices.push_back(i);
        }
    }
    return indices;
}

namespace {

/** Allocated routes + ground-truth burn bits for one experiment. */
struct RouteSetup
{
    std::vector<fabric::RouteSpec> specs;
    std::vector<bool> burn_values;
    std::vector<double> targets;
};

RouteSetup
allocateRoutes(fabric::Device &device,
               const std::vector<RouteGroup> &groups, util::Rng &rng)
{
    if (groups.empty()) {
        util::fatal("experiment: no route groups configured");
    }
    RouteSetup setup;
    for (const RouteGroup &group : groups) {
        if (group.count <= 0 || group.target_ps <= 0.0) {
            util::fatal("experiment: bad route group");
        }
        for (int i = 0; i < group.count; ++i) {
            const std::string name =
                "rut_" + std::to_string(
                             static_cast<long>(group.target_ps)) +
                "ps_" + std::to_string(i);
            setup.specs.push_back(
                device.allocateRoute(name, group.target_ps));
            setup.burn_values.push_back(rng.bernoulli(0.5));
            setup.targets.push_back(group.target_ps);
        }
    }
    return setup;
}

/** Accumulates sweep results into per-route series. */
class SeriesRecorder
{
  public:
    explicit SeriesRecorder(std::size_t routes) : raw_(routes) {}

    void
    record(double hour, const tdc::MeasurementSweep &sweep)
    {
        if (sweep.per_route.size() != raw_.size()) {
            util::fatal("SeriesRecorder: sweep arity mismatch");
        }
        for (std::size_t i = 0; i < raw_.size(); ++i) {
            raw_[i].addPoint(hour, sweep.per_route[i].deltaPs());
        }
    }

    DeltaSeries
    centered(std::size_t i) const
    {
        return raw_[i].centeredAtFirst();
    }

  private:
    std::vector<DeltaSeries> raw_;
};

ExperimentResult
assembleResult(const RouteSetup &setup, const SeriesRecorder &recorder,
               double condition_hours, double measure_seconds,
               std::size_t sweeps)
{
    ExperimentResult result;
    result.condition_hours = condition_hours;
    result.measure_seconds = measure_seconds;
    result.sweeps = sweeps;
    result.routes.reserve(setup.specs.size());
    for (std::size_t i = 0; i < setup.specs.size(); ++i) {
        RouteRecord record;
        record.name = setup.specs[i].name;
        record.target_ps = setup.targets[i];
        record.burn_value = setup.burn_values[i];
        record.series = recorder.centered(i);
        result.routes.push_back(std::move(record));
    }
    return result;
}

/**
 * Report one finished sweep to the (optional) observer; honour a false
 * return by throwing util::CancelledError right here, which unwinds
 * the experiment loop at a clean checkpoint. The deltas handed out are
 * the raw per-route ∆ps of this one sweep (uncentered — centering
 * needs the whole series, which a streaming consumer doesn't have).
 */
void
notifySweep(SweepObserver *observer, std::size_t sweep_index,
            double hour, const tdc::MeasurementSweep &sweep)
{
    if (observer == nullptr) {
        return;
    }
    std::vector<double> deltas;
    deltas.reserve(sweep.per_route.size());
    for (const auto &route : sweep.per_route) {
        deltas.push_back(route.deltaPs());
    }
    if (!observer->onSweep(sweep_index, hour, deltas.data(),
                           deltas.size())) {
        throw util::CancelledError(
            "experiment cancelled at sweep " +
            std::to_string(sweep_index));
    }
}

mitigation::NoMitigation g_no_mitigation;

mitigation::MitigationStrategy &
strategyOrDefault(mitigation::MitigationStrategy *strategy)
{
    return strategy != nullptr ? *strategy : g_no_mitigation;
}

/**
 * Advance a condition interval at the strategy's cadence so that
 * mitigation strategies with hourly schedules (inversion, shuffle,
 * wear-leveling) actually fire inside coarse measurement cadences.
 * A cadence of 0 (NoMitigation, hold-and-recover) means apply() is
 * idempotent over the interval: the whole uninterrupted span
 * collapses into one jump, which the device's segment timeline makes
 * O(1) — and bit-identical to the stepped equivalent, because
 * constant-condition steps coalesce into the same single segment.
 * The design is (re)loaded after every strategy application because
 * relocation may reference freshly allocated elements.
 */
void
conditionWithStrategy(mitigation::MitigationStrategy &strategy,
                      fabric::TargetDesign &target,
                      fabric::Device &device,
                      const std::vector<bool> &values, double start_hour,
                      double duration_h,
                      const std::function<void(double)> &load_and_advance)
{
    const double cadence = strategy.cadenceHours();
    double advanced = 0.0;
    while (advanced < duration_h - 1e-9) {
        const double remaining = duration_h - advanced;
        const double step =
            cadence > 0.0 ? std::min(cadence, remaining) : remaining;
        strategy.apply(target, device, values, start_hour + advanced);
        load_and_advance(step);
        advanced += step;
    }
}

/** Apply a §8.1 epilogue before the tenant releases the instance. */
void
runEpilogue(const mitigation::Epilogue &epilogue,
            std::shared_ptr<fabric::TargetDesign> target,
            const std::vector<bool> &values,
            const std::function<void(double)> &advance)
{
    if (epilogue.policy == mitigation::Epilogue::Policy::None ||
        epilogue.hours <= 0.0) {
        return;
    }
    for (std::size_t i = 0; i < values.size(); ++i) {
        switch (epilogue.policy) {
          case mitigation::Epilogue::Policy::Complement:
            target->setBurnValue(i, !values[i]);
            break;
          case mitigation::Epilogue::Policy::AllZero:
            target->setBurnValue(i, false);
            break;
          case mitigation::Epilogue::Policy::AllOne:
            target->setBurnValue(i, true);
            break;
          case mitigation::Epilogue::Policy::None:
            break;
        }
    }
    advance(epilogue.hours);
}

} // namespace

ExperimentResult
runExperiment1(const Experiment1Config &config)
{
    util::Rng rng(config.seed);
    fabric::Device device(config.device);
    device.setWorkPool(config.pool);
    phys::OvenEnvironment oven(
        util::celsiusToKelvin(config.oven_temp_c));

    RouteSetup setup = allocateRoutes(device, config.groups, rng);
    auto target = std::make_shared<fabric::TargetDesign>(
        "exp1_target", setup.specs, setup.burn_values, config.arith);
    auto measure = std::make_shared<tdc::MeasureDesign>(
        device, setup.specs, config.tdc);
    mitigation::MitigationStrategy &strategy =
        strategyOrDefault(config.strategy);

    util::Rng meas_rng = rng.split("measurement");

    // Hour 0: Calibration phase, then the baseline measurement that
    // the series are centered against.
    device.loadDesign(measure);
    measure->calibrateAll(oven.dieTempK(), meas_rng, config.pool);

    SeriesRecorder recorder(setup.specs.size());
    double measure_seconds = 0.0;
    std::size_t sweeps = 0;
    const auto measureNow = [&](double hour) {
        // Reloading the resident, unmutated Measure design is a no-op
        // inside loadDesign (no epoch bump), so the baseline sweep
        // reuses the calibration sweep's cached tap arrivals.
        device.loadDesign(measure);
        const tdc::MeasurementSweep sweep =
            measure->measureAll(oven.dieTempK(), meas_rng, config.pool);
        recorder.record(hour, sweep);
        measure_seconds += sweep.wall_seconds;
        notifySweep(config.observer, sweeps, hour, sweep);
        ++sweeps;
    };
    measureNow(0.0);

    const auto conditionStep = [&](const std::vector<bool> &values,
                                   double hour, double dt) {
        conditionWithStrategy(strategy, *target, device, values, hour,
                              dt, [&](double step) {
                                  device.loadDesign(target);
                                  device.advance(step, oven);
                              });
    };

    // Burn-in period: condition X, measure every measure_every_h.
    const std::vector<bool> x = setup.burn_values;
    std::vector<bool> x_bar(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        x_bar[i] = !x[i];
    }
    double hour = 0.0;
    while (hour < config.burn_hours - 1e-9) {
        const double dt =
            std::min(config.measure_every_h, config.burn_hours - hour);
        conditionStep(x, hour, dt);
        hour += dt;
        measureNow(hour);
    }
    // Recovery period: condition X̄ (paper hours [200, 400)).
    while (hour < config.burn_hours + config.recovery_hours - 1e-9) {
        const double dt = std::min(config.measure_every_h,
                                   config.burn_hours +
                                       config.recovery_hours - hour);
        conditionStep(x_bar, hour, dt);
        hour += dt;
        measureNow(hour);
    }

    return assembleResult(setup, recorder, hour, measure_seconds,
                          sweeps);
}

ExperimentResult
runExperiment2(const Experiment2Config &config)
{
    util::Rng rng(config.seed);
    cloud::CloudPlatform platform(config.platform);

    const auto rented = platform.rent();
    if (!rented) {
        util::fatal("runExperiment2: region exhausted");
    }
    cloud::FpgaInstance &inst = platform.instance(*rented);
    fabric::Device &device = inst.device();
    device.setWorkPool(config.pool);

    RouteSetup setup = allocateRoutes(device, config.groups, rng);
    auto target = std::make_shared<fabric::TargetDesign>(
        "exp2_target", setup.specs, setup.burn_values, config.arith);
    auto measure = std::make_shared<tdc::MeasureDesign>(
        device, setup.specs, config.tdc);
    mitigation::MitigationStrategy &strategy =
        strategyOrDefault(config.strategy);

    // Calibration + baseline (TM1 allows pre-burn-in measurement).
    if (!platform.loadDesign(*rented, measure).empty()) {
        util::fatal("runExperiment2: measure design failed DRC");
    }
    measure->calibrateAll(inst.dieTempK(), inst.rng(), config.pool);

    SeriesRecorder recorder(setup.specs.size());
    double measure_seconds = 0.0;
    std::size_t sweeps = 0;
    const auto measureNow = [&](double hour) {
        if (!platform.loadDesign(*rented, measure).empty()) {
            util::fatal("runExperiment2: measure design failed DRC");
        }
        // Let the die settle to the Measure design's power before
        // sampling (the paper's measurement takes ~52 s anyway).
        platform.advanceHours(kMeasureSettleHours);
        const tdc::MeasurementSweep sweep = measure->measureAll(
            inst.dieTempK(), inst.rng(), config.pool);
        recorder.record(hour, sweep);
        measure_seconds += sweep.wall_seconds;
        notifySweep(config.observer, sweeps, hour, sweep);
        ++sweeps;
    };
    measureNow(0.0);

    double hour = 0.0;
    while (hour < config.burn_hours - 1e-9) {
        const double dt =
            std::min(config.measure_every_h, config.burn_hours - hour);
        conditionWithStrategy(
            strategy, *target, inst.device(), setup.burn_values, hour,
            std::max(0.0, dt - kMeasureSettleHours), [&](double step) {
                if (!platform.loadDesign(*rented, target).empty()) {
                    util::fatal(
                        "runExperiment2: target design failed DRC");
                }
                // Span-level advance: ambient events bound the walk,
                // so no sub-step cap is needed.
                platform.advanceHours(step, step);
            });
        hour += dt;
        measureNow(hour);
    }
    platform.release(*rented);
    // The platform (and its devices) may outlive the caller's pool.
    device.setWorkPool(nullptr);

    return assembleResult(setup, recorder, hour, measure_seconds,
                          sweeps);
}

ExperimentResult
runExperiment3(const Experiment3Config &config)
{
    util::Rng rng(config.seed);
    cloud::CloudPlatform platform(config.platform);

    // ---- Victim tenancy -------------------------------------------
    const auto victim_id = platform.rent();
    if (!victim_id) {
        util::fatal("runExperiment3: region exhausted");
    }
    cloud::FpgaInstance &victim_inst = platform.instance(*victim_id);
    fabric::Device &device = victim_inst.device();
    device.setWorkPool(config.pool);

    RouteSetup setup = allocateRoutes(device, config.groups, rng);
    auto target = std::make_shared<fabric::TargetDesign>(
        "exp3_victim", setup.specs, setup.burn_values, config.arith);
    mitigation::MitigationStrategy &strategy =
        strategyOrDefault(config.strategy);

    // The victim computes for burn_hours with no attacker access and
    // no measurement (the attacker does not control the FPGA). With
    // an unscheduled strategy (cadence 0) the whole burn is a single
    // jump — the paper's Experiment 3 conditions 200 h uninterrupted,
    // and the segment timeline makes that O(1) per fleet board.
    conditionWithStrategy(strategy, *target, device, setup.burn_values,
                          0.0, config.burn_hours, [&](double dt) {
                              if (!platform
                                       .loadDesign(*victim_id, target)
                                       .empty()) {
                                  util::fatal("runExperiment3: victim "
                                              "design failed DRC");
                              }
                              platform.advanceHours(dt, dt);
                          });
    double hour = config.burn_hours;
    runEpilogue(strategy.epilogue(), target, setup.burn_values,
                [&](double hours) {
                    if (!platform.loadDesign(*victim_id, target)
                             .empty()) {
                        util::fatal("runExperiment3: epilogue DRC");
                    }
                    platform.advanceHours(hours, hours);
                    hour += hours;
                });
    platform.release(*victim_id); // provider wipes the configuration

    // ---- Attacker tenancy -----------------------------------------
    if (config.attacker_wait_h > 0.0) {
        // Waiting out a quarantine: the board recovers (or gets
        // scrubbed) in the pool meanwhile.
        // Whole-quarantine jump: pooled boards defer the span and
        // replay it only if observed again.
        platform.advanceHours(config.attacker_wait_h,
                              config.attacker_wait_h);
        hour += config.attacker_wait_h;
    }
    const auto attacker_id = platform.rent();
    if (!attacker_id) {
        util::fatal("runExperiment3: region exhausted for attacker");
    }
    cloud::FpgaInstance &attacker_inst =
        platform.instance(*attacker_id);
    if (&attacker_inst.device() != &device) {
        util::warn("runExperiment3: attacker was not assigned the "
                   "victim board; recovery will fail (expected with "
                   "quarantine/mitigation configurations)");
    }
    fabric::Device &att_device = attacker_inst.device();
    att_device.setWorkPool(config.pool);

    // The attacker knows the skeleton (Assumption 1) and builds the
    // Measure design over it; θ_init is consistent across devices of
    // a type (§6.3), obtained here by calibrating at takeover.
    auto measure = std::make_shared<tdc::MeasureDesign>(
        att_device, setup.specs, config.tdc);
    if (!platform.loadDesign(*attacker_id, measure).empty()) {
        util::fatal("runExperiment3: measure design failed DRC");
    }
    measure->calibrateAll(attacker_inst.dieTempK(),
                          attacker_inst.rng(), config.pool);

    // Park design: every route under test forced to park_value.
    auto park = std::make_shared<fabric::Design>("exp3_attacker_park");
    for (const fabric::RouteSpec &spec : setup.specs) {
        park->setRouteValue(spec, config.park_value);
    }
    park->setPowerW(2.0);

    SeriesRecorder recorder(setup.specs.size());
    double measure_seconds = 0.0;
    std::size_t sweeps = 0;
    const auto measureNow = [&](double at_hour) {
        if (!platform.loadDesign(*attacker_id, measure).empty()) {
            util::fatal("runExperiment3: measure design failed DRC");
        }
        platform.advanceHours(kMeasureSettleHours);
        const tdc::MeasurementSweep sweep =
            measure->measureAll(attacker_inst.dieTempK(),
                                attacker_inst.rng(), config.pool);
        recorder.record(at_hour, sweep);
        measure_seconds += sweep.wall_seconds;
        notifySweep(config.observer, sweeps, at_hour, sweep);
        ++sweeps;
    };

    // First attacker sample: the centering origin (hour 200).
    measureNow(hour);
    double observed = 0.0;
    while (observed < config.recovery_hours - 1e-9) {
        const double dt = std::min(config.measure_every_h,
                                   config.recovery_hours - observed);
        if (!platform.loadDesign(*attacker_id, park).empty()) {
            util::fatal("runExperiment3: park design failed DRC");
        }
        const double park_h = std::max(0.0, dt - kMeasureSettleHours);
        if (park_h > 0.0) {
            platform.advanceHours(park_h, park_h);
        }
        observed += dt;
        measureNow(hour + observed);
    }
    platform.release(*attacker_id);
    // The platform (and its devices) may outlive the caller's pool.
    device.setWorkPool(nullptr);
    att_device.setWorkPool(nullptr);

    return assembleResult(setup, recorder, hour + observed,
                          measure_seconds, sweeps);
}

TenancyChurnResult
runTenancyChurn(const TenancyChurnConfig &config)
{
    if (config.tenancies == 0 || config.routes_per_tenant == 0) {
        util::fatal("runTenancyChurn: empty scenario");
    }
    if (config.burn_hours_min <= 0.0 ||
        config.burn_hours_max < config.burn_hours_min) {
        util::fatal("runTenancyChurn: bad burn-hour range");
    }
    util::Rng rng(config.seed);
    fabric::Device device(config.device);
    fabric::ArithmeticHeavyConfig arith;
    arith.dsp_count = config.dsp_count;

    struct TenancyRoutes
    {
        std::vector<fabric::RouteSpec> specs;
    };
    std::vector<TenancyRoutes> history;
    history.reserve(config.tenancies);
    double elapsed = 0.0;

    for (std::size_t t = 0; t < config.tenancies; ++t) {
        TenancyRoutes tenancy;
        std::vector<bool> bits;
        for (std::size_t r = 0; r < config.routes_per_tenant; ++r) {
            tenancy.specs.push_back(device.allocateRoute(
                "churn_t" + std::to_string(t) + "_r" +
                    std::to_string(r),
                config.route_target_ps));
            bits.push_back(rng.bernoulli(0.5));
        }
        auto target = std::make_shared<fabric::TargetDesign>(
            "churn_tenant_" + std::to_string(t), tenancy.specs, bits,
            arith);
        device.loadDesign(target);
        const double burn_h = static_cast<double>(rng.uniformInt(
            static_cast<std::uint64_t>(config.burn_hours_min),
            static_cast<std::uint64_t>(config.burn_hours_max)));
        // Distinct die temperature per tenancy: no two tenancies'
        // segments coalesce, so deferred replay walks a realistic
        // multi-segment history.
        const double temp_k =
            config.busy_temp_k +
            0.25 * static_cast<double>(rng.uniformInt(0, 8));
        device.advanceAt(burn_h / 2.0, temp_k);
        if (config.midflip) {
            // In-place mutation of the resident design — the flip is
            // folded in at the start of the next recorded span, like
            // an inversion mitigation firing mid-tenancy.
            for (std::size_t i = 0; i < bits.size(); ++i) {
                target->setBurnValue(i, !bits[i]);
            }
        }
        device.advanceAt(burn_h / 2.0, temp_k);
        device.wipe();
        device.advanceAt(config.idle_hours, config.idle_temp_k);
        elapsed += burn_h + config.idle_hours;
        history.push_back(std::move(tenancy));
        if (config.observer != nullptr &&
            !config.observer->onSweep(t, elapsed, nullptr, 0)) {
            throw util::CancelledError(
                "tenancy churn cancelled after tenancy " +
                std::to_string(t));
        }
    }

    TenancyChurnResult result;
    const std::size_t observe = std::min(config.observe_last,
                                         history.size());
    for (std::size_t i = history.size() - observe;
         i < history.size(); ++i) {
        for (const fabric::RouteSpec &spec : history[i].specs) {
            fabric::Route route = device.bindRoute(spec);
            result.observed_delays_ps.push_back(route.delayPs(
                phys::Transition::Rising, config.busy_temp_k));
            result.observed_delays_ps.push_back(route.delayPs(
                phys::Transition::Falling, config.busy_temp_k));
        }
    }
    result.materialized = device.materializedCount();
    result.journaled = device.journaledKeyCount();
    result.elapsed_h = elapsed;
    return result;
}

} // namespace pentimento::core
