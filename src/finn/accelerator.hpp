/**
 * @file
 * FINN-style neural-network accelerator designs (paper §2).
 *
 * "Xilinx FINN provides prebuilt bitstreams for different neural
 * network architectures... the complete source code and compilation
 * scripts are available, which allows one to determine the locations
 * of the sensitive data — the neural network weights."
 *
 * The threat: a vendor fine-tunes the public architecture with
 * proprietary quantized weights and sells the result as an encrypted
 * AFI. Because the *architecture* (and hence the placement skeleton)
 * is public, an attacker who rents the AFI can aim TDCs at the weight
 * routes and recover the weights bit by bit — Threat Model 1 against
 * ML intellectual property.
 *
 * FinnAccelerator synthesises such a design: each weight is a
 * quantized integer whose bits sit as netlist constants on dedicated
 * routes, interleaved with toggling datapath nets (which conveniently
 * also delimit the nets for bitstream-level skeleton extraction).
 */

#ifndef PENTIMENTO_FINN_ACCELERATOR_HPP
#define PENTIMENTO_FINN_ACCELERATOR_HPP

#include <memory>
#include <vector>

#include "fabric/bitstream.hpp"
#include "fabric/design.hpp"
#include "fabric/device.hpp"
#include "util/rng.hpp"

namespace pentimento::finn {

/** Architecture parameters of the accelerator. */
struct FinnConfig
{
    /** Weights per layer (e.g. {8, 8} = two 8-weight layers). */
    std::vector<int> layer_weights = {8, 8};
    /** Quantization width per weight (FINN commonly uses 2-8 bits). */
    int weight_bits = 4;
    /** Nominal delay of each weight-bit route, ps. */
    double route_ps = 4000.0;
    /** Datapath power per layer, watts. */
    double watts_per_layer = 4.0;
};

/**
 * One instantiated accelerator with concrete weights.
 */
class FinnAccelerator
{
  public:
    /**
     * Build the accelerator on a device.
     *
     * @param device device whose allocator provides placement
     * @param config architecture
     * @param weights one quantized value in [0, 2^weight_bits) per
     *        weight; arity must match the architecture
     */
    FinnAccelerator(fabric::Device &device, const FinnConfig &config,
                    std::vector<int> weights);

    /** Draw random weights valid for an architecture. */
    static std::vector<int> randomWeights(const FinnConfig &config,
                                          util::Rng &rng);

    /** The architecture. */
    const FinnConfig &config() const { return config_; }

    /** Ground-truth weights. */
    const std::vector<int> &weights() const { return weights_; }

    /** The weights flattened to bits (LSB first within a weight). */
    std::vector<bool> weightBits() const;

    /** The loadable design (weights as netlist constants). */
    std::shared_ptr<fabric::TargetDesign> design() const
    {
        return design_;
    }

    /** Skeleton of the weight-bit routes (one per bit). */
    const std::vector<fabric::RouteSpec> &weightSkeleton() const
    {
        return weight_routes_;
    }

    /**
     * The public reference image: same architecture compiled with
     * placeholder weights, shipped unencrypted (as the FINN project
     * does). Attackers extract the skeleton from this.
     */
    fabric::Bitstream
    referenceBitstream(const fabric::DeviceConfig &target,
                       util::Rng &rng) const;

    /** Reassemble quantized weights from recovered bits. */
    static std::vector<int> decodeWeights(const std::vector<bool> &bits,
                                          const FinnConfig &config);

    /** Encode weights to the bit layout used on the routes. */
    static std::vector<bool> encodeWeights(const std::vector<int> &w,
                                           const FinnConfig &config);

  private:
    FinnConfig config_;
    std::vector<int> weights_;
    std::vector<fabric::RouteSpec> weight_routes_;
    std::shared_ptr<fabric::TargetDesign> design_;
};

} // namespace pentimento::finn

#endif // PENTIMENTO_FINN_ACCELERATOR_HPP
