#include "finn/accelerator.hpp"

#include <numeric>

#include "util/logging.hpp"

namespace pentimento::finn {

namespace {

int
totalWeights(const FinnConfig &config)
{
    return std::accumulate(config.layer_weights.begin(),
                           config.layer_weights.end(), 0);
}

} // namespace

std::vector<bool>
FinnAccelerator::encodeWeights(const std::vector<int> &w,
                               const FinnConfig &config)
{
    std::vector<bool> bits;
    bits.reserve(w.size() *
                 static_cast<std::size_t>(config.weight_bits));
    for (const int value : w) {
        if (value < 0 || value >= (1 << config.weight_bits)) {
            util::fatal("FinnAccelerator: weight outside quantization "
                        "range");
        }
        for (int b = 0; b < config.weight_bits; ++b) {
            bits.push_back(((value >> b) & 1) != 0);
        }
    }
    return bits;
}

std::vector<int>
FinnAccelerator::decodeWeights(const std::vector<bool> &bits,
                               const FinnConfig &config)
{
    if (bits.size() % static_cast<std::size_t>(config.weight_bits) !=
        0) {
        util::fatal("FinnAccelerator::decodeWeights: bit count is not "
                    "a multiple of the weight width");
    }
    std::vector<int> weights;
    weights.reserve(bits.size() /
                    static_cast<std::size_t>(config.weight_bits));
    for (std::size_t i = 0; i < bits.size();
         i += static_cast<std::size_t>(config.weight_bits)) {
        int value = 0;
        for (int b = 0; b < config.weight_bits; ++b) {
            value |= (bits[i + static_cast<std::size_t>(b)] ? 1 : 0)
                     << b;
        }
        weights.push_back(value);
    }
    return weights;
}

std::vector<int>
FinnAccelerator::randomWeights(const FinnConfig &config, util::Rng &rng)
{
    std::vector<int> weights;
    weights.reserve(static_cast<std::size_t>(totalWeights(config)));
    for (int i = 0; i < totalWeights(config); ++i) {
        weights.push_back(static_cast<int>(
            rng.uniformInt(0, (1u << config.weight_bits) - 1)));
    }
    return weights;
}

FinnAccelerator::FinnAccelerator(fabric::Device &device,
                                 const FinnConfig &config,
                                 std::vector<int> weights)
    : config_(config), weights_(std::move(weights))
{
    if (config_.weight_bits < 1 || config_.weight_bits > 16) {
        util::fatal("FinnAccelerator: weight_bits outside [1,16]");
    }
    if (static_cast<int>(weights_.size()) != totalWeights(config_)) {
        util::fatal("FinnAccelerator: weight count does not match the "
                    "architecture");
    }
    const std::vector<bool> bits = encodeWeights(weights_, config_);

    // Allocate one route per weight bit, each delimited by a one-
    // element toggling datapath net so the bitstream-level skeleton
    // extraction sees distinct runs.
    std::vector<fabric::RouteSpec> spacers;
    weight_routes_.reserve(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        weight_routes_.push_back(device.allocateRoute(
            "w" + std::to_string(i / config_.weight_bits) + "[" +
                std::to_string(i % config_.weight_bits) + "]",
            config_.route_ps));
        spacers.push_back(device.allocateRoute(
            "dp_spacer_" + std::to_string(i),
            device.config().routing_pitch_ps));
    }

    fabric::ArithmeticHeavyConfig arith;
    arith.dsp_count =
        64 * static_cast<int>(config_.layer_weights.size());
    arith.base_watts = 0.5;
    // Total draw: base + layers * watts_per_layer.
    arith.watts_per_dsp = config_.watts_per_layer / 64.0;
    std::vector<bool> burn(bits.begin(), bits.end());
    design_ = std::make_shared<fabric::TargetDesign>(
        "finn_accel", weight_routes_, burn, arith);
    for (const fabric::RouteSpec &spacer : spacers) {
        design_->setRouteToggling(spacer, 0.5);
    }
}

std::vector<bool>
FinnAccelerator::weightBits() const
{
    return encodeWeights(weights_, config_);
}

fabric::Bitstream
FinnAccelerator::referenceBitstream(const fabric::DeviceConfig &target,
                                    util::Rng &rng) const
{
    // The public build: same architecture, placeholder weights. A
    // scratch compile against the same device family reproduces the
    // placement the vendor's flow would emit.
    fabric::Device scratch(target);
    FinnAccelerator reference(scratch, config_,
                              randomWeights(config_, rng));
    return fabric::Bitstream::compile(reference.design_, target);
}

} // namespace pentimento::finn
