#include "serve/shard.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

#include "serve/client.hpp"
#include "serve/wire.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace pentimento::serve {

namespace {

using Clock = std::chrono::steady_clock;

/** Heartbeat request ids live far above the 1-based shard ids. */
constexpr std::uint64_t kPingIdBase = 0x70696e6700000000ULL; // "ping"

std::uint32_t
elapsedMs(Clock::time_point since)
{
    return static_cast<std::uint32_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - since)
            .count());
}

/** One spawned campaign_server --worker process. */
struct Worker
{
    pid_t pid = -1;
    /** Write end of the worker's stdin: closing it (or our death —
     *  it's the only copy) makes the worker exit, so no campaign can
     *  leave orphan daemons behind. */
    int stdin_fd = -1;
    /** Read end of the worker's stdout: the port line. */
    int stdout_fd = -1;
    std::uint16_t port = 0;
};

void
closeFd(int *fd)
{
    if (*fd >= 0) {
        ::close(*fd);
        *fd = -1;
    }
}

/** waitpid(WNOHANG) based liveness. Reaps on death. */
bool
workerAlive(Worker &worker)
{
    if (worker.pid < 0) {
        return false;
    }
    int status = 0;
    const pid_t reaped = ::waitpid(worker.pid, &status, WNOHANG);
    if (reaped == worker.pid) {
        worker.pid = -1;
        return false;
    }
    return true;
}

/** SIGKILL + reap + close pipes. Idempotent. */
void
destroyWorker(Worker &worker)
{
    if (worker.pid >= 0) {
        ::kill(worker.pid, SIGKILL);
        int status = 0;
        while (::waitpid(worker.pid, &status, 0) < 0 &&
               errno == EINTR) {
        }
        worker.pid = -1;
    }
    closeFd(&worker.stdin_fd);
    closeFd(&worker.stdout_fd);
    worker.port = 0;
}

/**
 * Graceful shutdown: close stdin (the worker's --worker watcher exits
 * on EOF) and give it a moment before escalating to SIGKILL.
 */
void
retireWorker(Worker &worker)
{
    closeFd(&worker.stdin_fd);
    const Clock::time_point start = Clock::now();
    while (worker.pid >= 0 && elapsedMs(start) < 2000) {
        if (!workerAlive(worker)) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    destroyWorker(worker);
}

/**
 * Read the worker's "campaign_server listening on port N" line from
 * its stdout pipe. Anything else first (usage errors, a crashed
 * exec) fails the spawn.
 */
util::Expected<std::uint16_t>
readPortLine(int fd, std::uint32_t timeout_ms)
{
    std::string line;
    const Clock::time_point start = Clock::now();
    for (;;) {
        const std::size_t nl = line.find('\n');
        if (nl != std::string::npos) {
            unsigned port = 0;
            if (std::sscanf(line.c_str(),
                            "campaign_server listening on port %u",
                            &port) == 1 &&
                port > 0 && port <= 65535) {
                return static_cast<std::uint16_t>(port);
            }
            return util::unexpected("worker: unexpected startup line '" +
                                    line.substr(0, nl) + "'");
        }
        const std::uint32_t spent = elapsedMs(start);
        if (spent >= timeout_ms) {
            return util::unexpected("worker: no port line within " +
                                    std::to_string(timeout_ms) + " ms");
        }
        pollfd pfd{fd, POLLIN, 0};
        const int rc =
            ::poll(&pfd, 1, static_cast<int>(timeout_ms - spent));
        if (rc < 0) {
            if (errno == EINTR) {
                continue;
            }
            return util::unexpected(std::string("worker: poll: ") +
                                    std::strerror(errno));
        }
        if (rc == 0) {
            continue;
        }
        char buf[256];
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n == 0) {
            return util::unexpected(
                "worker: exited before printing its port");
        }
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return util::unexpected(std::string("worker: read: ") +
                                    std::strerror(errno));
        }
        line.append(buf, static_cast<std::size_t>(n));
    }
}

/**
 * Fork+exec one worker. stdin/stdout are pipes (CLOEXEC on our side:
 * concurrent shard threads fork too, and their children must not
 * inherit this worker's pipe ends or its EOF-on-supervisor-death
 * contract breaks).
 */
util::Expected<Worker>
spawnWorker(const ShardSupervisorConfig &config)
{
    std::vector<std::string> args = {config.worker_binary, "--worker",
                                     "--port",             "0",
                                     "--executors",        "1",
                                     "--queue",            "8"};
    if (!config.checkpoint_dir.empty()) {
        args.push_back("--checkpoint-dir");
        args.push_back(config.checkpoint_dir);
    }
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (std::string &arg : args) {
        argv.push_back(arg.data());
    }
    argv.push_back(nullptr);

    int in_pipe[2];  // supervisor writes [1] -> worker stdin [0]
    int out_pipe[2]; // worker stdout [1] -> supervisor reads [0]
    if (::pipe2(in_pipe, O_CLOEXEC) != 0) {
        return util::unexpected(std::string("pipe2: ") +
                                std::strerror(errno));
    }
    if (::pipe2(out_pipe, O_CLOEXEC) != 0) {
        const std::string error = std::strerror(errno);
        ::close(in_pipe[0]);
        ::close(in_pipe[1]);
        return util::unexpected("pipe2: " + error);
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
        const std::string error = std::strerror(errno);
        ::close(in_pipe[0]);
        ::close(in_pipe[1]);
        ::close(out_pipe[0]);
        ::close(out_pipe[1]);
        return util::unexpected("fork: " + error);
    }
    if (pid == 0) {
        // Child: async-signal-safe only. dup2 clears CLOEXEC on the
        // worker's copies; every other pipe end closes at exec.
        ::dup2(in_pipe[0], 0);
        ::dup2(out_pipe[1], 1);
        ::execv(argv[0], argv.data());
        ::_exit(127);
    }
    ::close(in_pipe[0]);
    ::close(out_pipe[1]);
    Worker worker;
    worker.pid = pid;
    worker.stdin_fd = in_pipe[1];
    worker.stdout_fd = out_pipe[0];
    const util::Expected<std::uint16_t> port =
        readPortLine(worker.stdout_fd, config.spawn_timeout_ms);
    if (!port.ok()) {
        destroyWorker(worker);
        return util::unexpected(port.error());
    }
    worker.port = port.value();
    return worker;
}

/** Peek the request id a RESULT payload echoes. */
std::uint64_t
resultRequestId(const std::vector<std::uint8_t> &payload)
{
    WireReader reader(payload.data(), payload.size());
    return reader.u64();
}

/**
 * Drive one shard to a result: spawn/adopt a worker, submit, keep the
 * connection warm with pings, absorb crashes/stalls/sheds/resets with
 * bounded deterministic retries.
 */
util::Expected<ShardOutcome>
runShard(const ShardSupervisorConfig &config, std::uint32_t shard)
{
    Request request = config.request;
    request.request_id = shard + 1; // keys the checkpoint file
    request.shard_index = shard;
    request.shard_count = config.shard_count;
    const std::uint64_t ping_id = kPingIdBase + shard;

    ShardOutcome outcome;
    outcome.shard_index = shard;
    Worker worker;
    ClientConnection conn;
    std::string last_error = "not attempted";

    for (std::uint32_t attempt = 0; attempt < config.max_attempts;
         ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(shardRetryDelayMs(
                    config.backoff_seed, shard, attempt - 1,
                    config.backoff_base_ms, config.backoff_cap_ms)));
        }
        outcome.attempts = attempt + 1;
        if (!workerAlive(worker)) {
            destroyWorker(worker); // close stale pipes
            util::Expected<Worker> spawned = spawnWorker(config);
            if (!spawned.ok()) {
                last_error = spawned.error();
                continue;
            }
            worker = std::move(spawned.value());
            ++outcome.workers_spawned;
            conn.close();
        }
        if (!conn.connected()) {
            const util::Expected<void> connected =
                conn.connect(worker.port);
            if (!connected.ok()) {
                last_error = connected.error();
                destroyWorker(worker);
                continue;
            }
        }
        const util::Expected<void> sent = conn.sendFrame(
            FrameType::Request, encodeRequest(request));
        if (!sent.ok()) {
            // Transport death. Worker alive = orphaned run: reconnect
            // and resubmit — the server cancels the orphan at its next
            // day boundary (flushing a checkpoint) and the
            // resubmission resumes from it. Worker dead = respawn.
            last_error = sent.error();
            conn.close();
            continue;
        }
        Clock::time_point last_frame = Clock::now();
        bool retry_attempt = false;
        while (!retry_attempt) {
            util::Expected<Frame> frame =
                conn.readFrame(config.heartbeat_ms);
            if (!frame.ok()) {
                last_error = frame.error();
                if (!conn.connected() ||
                    frame.error().find("timed out") ==
                        std::string::npos) {
                    conn.close();
                    retry_attempt = true; // reset / EOF / corrupt
                    break;
                }
                if (elapsedMs(last_frame) >= config.stall_timeout_ms) {
                    last_error = "shard worker stalled (no frame for " +
                                 std::to_string(
                                     config.stall_timeout_ms) +
                                 " ms)";
                    conn.close();
                    destroyWorker(worker);
                    retry_attempt = true;
                    break;
                }
                // Quiet but not yet stalled: ping. The server answers
                // pings inline from its reader thread, so a healthy
                // worker echoes even while its executor is busy.
                Request ping;
                ping.request_id = ping_id;
                ping.kind = RequestKind::Ping;
                const util::Expected<void> pinged = conn.sendFrame(
                    FrameType::Request, encodeRequest(ping));
                if (!pinged.ok()) {
                    last_error = pinged.error();
                    conn.close();
                    retry_attempt = true;
                }
                continue;
            }
            last_frame = Clock::now();
            if (frame.value().type == FrameType::Sweep) {
                continue;
            }
            if (frame.value().type == FrameType::Result) {
                const std::uint64_t id =
                    resultRequestId(frame.value().payload);
                if (id == ping_id) {
                    continue; // heartbeat ack
                }
                if (id != request.request_id) {
                    continue; // stale echo from an adopted worker
                }
                std::uint64_t echoed = 0;
                util::Expected<FleetScanResult> decoded =
                    decodeFleetScanResult(frame.value().payload,
                                          &echoed);
                if (!decoded.ok()) {
                    return util::unexpected(
                        "shard " + std::to_string(shard) +
                        ": malformed result: " + decoded.error());
                }
                outcome.result = std::move(decoded.value());
                retireWorker(worker);
                return outcome;
            }
            if (frame.value().type == FrameType::Error) {
                const std::optional<ErrorInfo> info =
                    decodeError(frame.value().payload);
                if (!info.has_value()) {
                    last_error = "undecodable error frame";
                    conn.close();
                    destroyWorker(worker);
                    retry_attempt = true;
                    break;
                }
                if (info->request_id == ping_id) {
                    continue;
                }
                last_error = info->message;
                switch (info->code) {
                case ErrorCode::RetryAfter:
                    // Deterministic backoff, floored at the server's
                    // hint; resubmit on the same healthy connection.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(std::max(
                            info->retry_after_ms,
                            shardRetryDelayMs(
                                config.backoff_seed, shard, attempt,
                                config.backoff_base_ms,
                                config.backoff_cap_ms))));
                    retry_attempt = true;
                    break;
                case ErrorCode::Malformed:
                case ErrorCode::Unsupported:
                case ErrorCode::InvalidArgument:
                    // Resubmitting identical bytes cannot succeed.
                    destroyWorker(worker);
                    return util::unexpected(
                        "shard " + std::to_string(shard) +
                        " rejected: " + info->message);
                default:
                    // Deadline / internal / shutting down: replace
                    // the worker and retry from its checkpoint.
                    conn.close();
                    destroyWorker(worker);
                    retry_attempt = true;
                    break;
                }
            }
        }
    }
    destroyWorker(worker);
    return util::unexpected(
        "shard " + std::to_string(shard) + " failed after " +
        std::to_string(config.max_attempts) +
        " attempts (last error: " + last_error + ")");
}

} // namespace

std::uint32_t
shardRetryDelayMs(std::uint64_t seed, std::uint32_t shard,
                  std::uint32_t attempt, std::uint32_t base_ms,
                  std::uint32_t cap_ms)
{
    const std::uint64_t backoff = std::min<std::uint64_t>(
        cap_ms, static_cast<std::uint64_t>(base_ms)
                    << std::min<std::uint32_t>(attempt, 20));
    util::Rng jitter =
        util::Rng(seed).split("shard_backoff_" + std::to_string(shard) +
                              "_" + std::to_string(attempt));
    return static_cast<std::uint32_t>(
        backoff - backoff / 2 + jitter.uniformInt(0, backoff / 2));
}

util::Expected<FleetScanResult>
mergeShardResults(const std::vector<FleetScanResult> &shard_results)
{
    if (shard_results.empty()) {
        return util::unexpected("merge: no shard results");
    }
    FleetScanResult merged;
    merged.tenancies = shard_results[0].tenancies;
    merged.simulated_h = shard_results[0].simulated_h;
    merged.skipped = shard_results[0].skipped;
    for (std::size_t s = 0; s < shard_results.size(); ++s) {
        const FleetScanResult &r = shard_results[s];
        // The simulation phase is replicated, not partitioned: any
        // disagreement means a worker diverged and the merged output
        // would be silently wrong — refuse loudly instead.
        if (r.tenancies != merged.tenancies ||
            r.simulated_h != merged.simulated_h ||
            r.skipped != merged.skipped) {
            return util::unexpected(
                "merge: shard " + std::to_string(s) +
                " disagrees on the shared simulation phase");
        }
        for (const FleetScanBoardScore &score : r.boards) {
            merged.boards.push_back(score);
        }
    }
    return merged;
}

util::Expected<ShardedScanResult>
runShardedFleetScan(const ShardSupervisorConfig &config)
{
    if (config.shard_count == 0 || config.shard_count > kMaxShards) {
        return util::unexpected("supervisor: shard count out of range");
    }
    if (config.worker_binary.empty()) {
        return util::unexpected("supervisor: no worker binary");
    }
    if (!config.checkpoint_dir.empty() &&
        ::mkdir(config.checkpoint_dir.c_str(), 0755) != 0 &&
        errno != EEXIST) {
        // Without the directory every worker would silently run
        // checkpoint-less and crash resume would restart shards from
        // scratch — refuse up front instead.
        return util::unexpected(
            "supervisor: cannot create checkpoint dir " +
            config.checkpoint_dir + ": " + std::strerror(errno));
    }
    const std::uint32_t n = config.shard_count;
    std::vector<util::Expected<ShardOutcome>> outcomes(
        n, util::Expected<ShardOutcome>(util::unexpected("not run")));
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::uint32_t shard = 0; shard < n; ++shard) {
        threads.emplace_back([&config, &outcomes, shard] {
            outcomes[shard] = runShard(config, shard);
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    ShardedScanResult result;
    std::vector<FleetScanResult> shard_results;
    shard_results.reserve(n);
    for (std::uint32_t shard = 0; shard < n; ++shard) {
        if (!outcomes[shard].ok()) {
            return util::unexpected("supervisor: " +
                                    outcomes[shard].error());
        }
        shard_results.push_back(outcomes[shard].value().result);
        result.shards.push_back(std::move(outcomes[shard].value()));
    }
    util::Expected<FleetScanResult> merged =
        mergeShardResults(shard_results);
    if (!merged.ok()) {
        return util::unexpected("supervisor: " + merged.error());
    }
    result.merged = std::move(merged.value());
    return result;
}

} // namespace pentimento::serve
