#include "serve/wire.hpp"

#include <cstring>

namespace pentimento::serve {

namespace {

void
putLe(std::vector<std::uint8_t> &out, std::uint64_t v, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

} // namespace

void
WireWriter::u8(std::uint8_t v)
{
    out_.push_back(v);
}

void
WireWriter::u32(std::uint32_t v)
{
    putLe(out_, v, 4);
}

void
WireWriter::u64(std::uint64_t v)
{
    putLe(out_, v, 8);
}

void
WireWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
WireWriter::str(std::string_view v)
{
    u32(static_cast<std::uint32_t>(v.size()));
    out_.insert(out_.end(), v.begin(), v.end());
}

bool
WireReader::take(void *dst, std::size_t n)
{
    if (!ok()) {
        return false;
    }
    if (n > remaining()) {
        fail("wire: truncated payload");
        return false;
    }
    std::memcpy(dst, data_ + cursor_, n);
    cursor_ += n;
    return true;
}

std::uint8_t
WireReader::u8()
{
    std::uint8_t v = 0;
    take(&v, 1);
    return v;
}

std::uint32_t
WireReader::u32()
{
    std::uint8_t raw[4] = {};
    if (!take(raw, sizeof(raw))) {
        return 0;
    }
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
        v = (v << 8) | raw[i];
    }
    return v;
}

std::uint64_t
WireReader::u64()
{
    std::uint8_t raw[8] = {};
    if (!take(raw, sizeof(raw))) {
        return 0;
    }
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) | raw[i];
    }
    return v;
}

double
WireReader::f64()
{
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return ok() ? v : 0.0;
}

std::string
WireReader::str()
{
    const std::uint32_t len = u32();
    if (!ok()) {
        return {};
    }
    if (len > remaining()) {
        fail("wire: string length exceeds payload");
        return {};
    }
    std::string s(reinterpret_cast<const char *>(data_ + cursor_), len);
    cursor_ += len;
    return s;
}

void
WireReader::fail(std::string message)
{
    if (error_.empty()) {
        error_ = std::move(message);
    }
}

} // namespace pentimento::serve
