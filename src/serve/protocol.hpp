/**
 * @file
 * Campaign-server wire protocol v1.
 *
 * Transport: length-prefixed, checksummed frames over a byte stream.
 *
 *     u32 magic "PCS1" | u32 type | u32 payload_len |
 *     payload[payload_len] | u32 crc32c(type ‖ payload_len ‖ payload)
 *
 * The decoder is incremental (feed() any byte granularity — a
 * slowloris client sending one byte at a time decodes identically),
 * caps the declared payload length *before* buffering, and reports
 * corruption (bad magic, oversize, CRC mismatch) as a typed status
 * instead of trusting a single bad byte with the process: a malformed
 * client must never take down the fleet. Corruption poisons the whole
 * connection — after a framing error the stream has no trustworthy
 * resynchronisation point, so the server answers with one ERROR frame
 * and closes. Malformed *payloads* inside a CRC-valid frame, by
 * contrast, only fail that request: frame boundaries are still sound,
 * and the connection stays serviceable.
 *
 * Requests carry a protocol version, a client-chosen request id
 * (echoed in every response frame), a seed, a deadline, and one of the
 * simulator's pure entry points with hard caps on every dimension.
 * Because each entry point is a pure function of its config, the bytes
 * of a RESULT frame are a pure function of the request — regardless of
 * executor interleaving, pool width, or crash/resume history. That is
 * the determinism contract serve_test locks.
 */

#ifndef PENTIMENTO_SERVE_PROTOCOL_HPP
#define PENTIMENTO_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "serve/wire.hpp"
#include "util/snapshot.hpp"

namespace pentimento::serve {

/** Protocol version carried inside every request payload. */
inline constexpr std::uint32_t kProtocolVersion = 1;

/** Ceiling on FleetScan shard_count (supervisor and wire cap). */
inline constexpr std::uint32_t kMaxShards = 64;

/** Frame magic: "PCS1". */
inline constexpr std::uint32_t kFrameMagic =
    util::snapshotTag('P', 'C', 'S', '1');

/** Frame types. */
enum class FrameType : std::uint32_t
{
    Request = 1,
    Result = 2,
    Error = 3,
    Sweep = 4,
};

/** Request kinds (inside a Request frame's payload). */
enum class RequestKind : std::uint8_t
{
    Ping = 1,
    Experiment1 = 2,
    Experiment2 = 3,
    Experiment3 = 4,
    TenancyChurn = 5,
    FleetScan = 6,
};

/** Typed error codes carried by Error frames. */
enum class ErrorCode : std::uint32_t
{
    Malformed = 1,       ///< frame or payload failed to decode
    Unsupported = 2,     ///< unknown version / frame type / kind
    InvalidArgument = 3, ///< decoded fine but violates a cap
    DeadlineExceeded = 4,
    RetryAfter = 5, ///< admission queue full: shed, retry later
    Internal = 6,
    ShuttingDown = 7, ///< server is draining; resubmit elsewhere/later
};

/** Request flag bits. */
inline constexpr std::uint32_t kFlagStreamSweeps = 1u << 0;
/** FleetScan: run in golden-compat mode — the exact draw sequence of
 *  bench/fleet_campaign (its fixed driver seed and design naming), so
 *  shard workers reproduce the committed golden CSV byte-for-byte. */
inline constexpr std::uint32_t kFlagGoldenCampaign = 1u << 1;

// ----------------------------------------------------------- requests

/** Route-group shape shared by the experiment requests. */
struct WireRouteGroup
{
    double target_ps = 1000.0;
    std::uint32_t count = 16;
};

/** One decoded request (kind selects the active section). */
struct Request
{
    std::uint64_t request_id = 0;
    std::uint64_t seed = 0;
    /** 0 = server default; capped at the server's maximum. */
    std::uint32_t deadline_ms = 0;
    std::uint32_t flags = 0;
    RequestKind kind = RequestKind::Ping;

    // Experiment1/2/3 (unused fields ignored per kind).
    double burn_hours = 0.0;
    double recovery_hours = 0.0;
    double measure_every_h = 1.0;
    double attacker_wait_h = 0.0;
    bool park_value = false;
    std::vector<WireRouteGroup> groups;

    // TenancyChurn.
    std::uint32_t tenancies = 0;
    std::uint32_t routes_per_tenant = 0;
    double burn_hours_min = 0.0;
    double burn_hours_max = 0.0;
    double idle_hours = 0.0;
    bool midflip = false;
    std::uint32_t observe_last = 0;
    std::uint32_t dsp_count = 0;

    // FleetScan.
    std::uint32_t fleet = 0;
    std::uint32_t days = 0;
    std::uint32_t scan_routes_per_tenant = 0;
    std::uint32_t max_measured = 0;
    std::uint32_t checkpoint_every_days = 0;
    /** Testing aid: sleep this long per simulated day (capped). */
    std::uint32_t throttle_ms_per_day = 0;
    /** Board-range shard of the scan: this worker's index. */
    std::uint32_t shard_index = 0;
    /** Total shards (0 = unsharded, run the whole scan). */
    std::uint32_t shard_count = 0;

    bool streamSweeps() const { return (flags & kFlagStreamSweeps) != 0; }
    bool goldenCampaign() const
    {
        return (flags & kFlagGoldenCampaign) != 0;
    }
};

/** Decode failure: a typed code plus a deterministic message. */
struct DecodeError
{
    ErrorCode code = ErrorCode::Malformed;
    std::string message;
    /** Request id, when decoding got far enough to learn it. */
    std::uint64_t request_id = 0;
};

/**
 * Decode and validate one Request-frame payload. Returns nullopt on
 * success (out is filled), or the typed error to answer with. Strict:
 * trailing bytes after a complete request are malformed.
 */
std::optional<DecodeError> decodeRequest(
    const std::vector<std::uint8_t> &payload, Request *out);

/** Encode a request payload (client side: loadgen, tests). */
std::vector<std::uint8_t> encodeRequest(const Request &request);

// ---------------------------------------------------------- responses

/** Per-board score of a fleet scan (mirrors bench/fleet_campaign). */
struct FleetScanBoardScore
{
    std::string board;
    std::uint64_t bits = 0;
    std::uint64_t correct = 0;
    double accuracy = 0.0;
};

/**
 * Per-board BRAM readout score (content-remanence channel; local
 * bookkeeping only, never wire-encoded).
 */
struct FleetScanBramScore
{
    std::string board;
    /** Blocks read back (== the victim tenancy's word count). */
    std::uint64_t blocks = 0;
    /** Exact 64-bit word matches against the victim's data. */
    std::uint64_t recovered = 0;
    /** Blocks whose retention window had expired (cell noise). */
    std::uint64_t decayed = 0;
    /** Blocks found zeroed (provider scrub or reconfiguration). */
    std::uint64_t zeroed = 0;
    /** Whether the victim tenancy ended in an unclean teardown. */
    bool unclean = false;
};

/** Result of a fleet-scan campaign. */
struct FleetScanResult
{
    std::uint64_t tenancies = 0;
    double simulated_h = 0.0;
    /** Scan targets skipped as never-rented virgins. */
    std::uint64_t skipped = 0;
    std::vector<FleetScanBoardScore> boards;

    // Local-run bookkeeping; NOT part of the wire encoding.
    /** Checkpoint path the run resumed from ("" = fresh run). */
    std::string resumed_from;
    /** Day the resumed checkpoint was taken at. */
    int resumed_day = 0;
    std::uint64_t resumed_finished = 0;
    std::uint64_t resumed_active = 0;
    /** Day the run halted at (halt_at_day; 0 = ran to completion). */
    int halted_after_day = 0;
    /** Journal-stress counters (0/0 unless stress mode). */
    std::uint64_t stress_boards = 0;
    std::uint64_t stress_elements = 0;
    /** BRAM-channel per-board readouts (bram_channel runs only). */
    std::vector<FleetScanBramScore> bram_boards;
    /** Provider BRAM scrubs performed over the whole campaign. */
    std::uint64_t bram_scrub_ops = 0;
};

/** RESULT payload for Ping. */
std::vector<std::uint8_t> encodePingResult(std::uint64_t request_id);

/** RESULT payload for Experiment1/2/3 (kind echoes the request). */
std::vector<std::uint8_t> encodeExperimentResult(
    std::uint64_t request_id, RequestKind kind,
    const core::ExperimentResult &result);

/** RESULT payload for TenancyChurn. */
std::vector<std::uint8_t> encodeChurnResult(
    std::uint64_t request_id, const core::TenancyChurnResult &result);

/** RESULT payload for FleetScan. */
std::vector<std::uint8_t> encodeFleetScanResult(
    std::uint64_t request_id, const FleetScanResult &result);

/**
 * Decode a FleetScan RESULT payload (supervisor side). Returns the
 * echoed request id via *request_id; nullopt-style error string on
 * malformed bytes.
 */
util::Expected<FleetScanResult> decodeFleetScanResult(
    const std::vector<std::uint8_t> &payload, std::uint64_t *request_id);

/** SWEEP payload: raw (uncentered) per-route ∆ps of one sweep. */
std::vector<std::uint8_t> encodeSweep(std::uint64_t request_id,
                                      std::uint32_t sweep_index,
                                      double hour, const double *delta_ps,
                                      std::size_t n_routes);

/** ERROR payload. */
std::vector<std::uint8_t> encodeError(std::uint64_t request_id,
                                      ErrorCode code,
                                      std::uint32_t retry_after_ms,
                                      std::string_view message);

/** Decoded ERROR payload (client side). */
struct ErrorInfo
{
    std::uint64_t request_id = 0;
    ErrorCode code = ErrorCode::Internal;
    std::uint32_t retry_after_ms = 0;
    std::string message;
};

/** Decode an ERROR payload; nullopt when structurally malformed. */
std::optional<ErrorInfo> decodeError(
    const std::vector<std::uint8_t> &payload);

// ------------------------------------------------------------ framing

/** One complete, CRC-verified frame. */
struct Frame
{
    FrameType type = FrameType::Request;
    std::vector<std::uint8_t> payload;
};

/** Wrap a payload in a complete frame (header + CRC). */
std::vector<std::uint8_t> encodeFrame(
    FrameType type, const std::vector<std::uint8_t> &payload);

/**
 * Incremental, hardened frame decoder.
 *
 * feed() arbitrary byte chunks, then drain next() until it stops
 * returning Ready. Corruption is sticky: after the first Corrupt
 * status the decoder refuses further work (the stream has no reliable
 * resync point), and error() names the cause deterministically.
 */
class FrameDecoder
{
  public:
    enum class Status
    {
        Ready,    ///< a frame was produced
        NeedMore, ///< no complete frame buffered yet
        Corrupt,  ///< stream-level corruption; connection must close
    };

    explicit FrameDecoder(std::uint32_t max_payload_bytes)
        : max_payload_(max_payload_bytes)
    {
    }

    /** Append raw bytes from the stream. No-op once corrupt. */
    void feed(const void *data, std::size_t len);

    /** Try to extract the next complete frame. */
    Status next(Frame *out);

    /** Bytes of an incomplete frame are buffered (slowloris timer). */
    bool midFrame() const { return !corrupt_ && !buffer_.empty(); }

    /** First corruption cause ("" while the stream is healthy). */
    const std::string &error() const { return error_; }

  private:
    std::uint32_t max_payload_ = 0;
    std::vector<std::uint8_t> buffer_;
    bool corrupt_ = false;
    std::string error_;
};

} // namespace pentimento::serve

#endif // PENTIMENTO_SERVE_PROTOCOL_HPP
