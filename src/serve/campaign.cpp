#include "serve/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "cloud/platform.hpp"
#include "core/classifier.hpp"
#include "core/delta_series.hpp"
#include "fabric/bram_block.hpp"
#include "tdc/measure_design.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/snapshot.hpp"

namespace pentimento::serve {

namespace {

constexpr double kRouteTargetPs = 2000.0;
constexpr double kRecoveryHours = 25.0;

/** Fraction of tenancies ending in an unclean teardown (crash or
 *  host power event) when the BRAM channel runs. */
constexpr double kUncleanTeardownP = 0.25;
/** Longest off-power exposure an unclean teardown inflicts, hours —
 *  the same order as the default per-block retention median, so a
 *  realistic share of unclean boards decay before readout. */
constexpr double kMaxOffPowerH = 0.1;

constexpr std::uint32_t kSrvCfgTag =
    util::snapshotTag('S', 'C', 'F', '!');
constexpr std::uint32_t kSrvCmpTag =
    util::snapshotTag('S', 'C', 'M', '!');

/** One completed tenancy: what the attacker would need to know. */
struct Tenancy
{
    std::string board;
    std::vector<fabric::RouteSpec> specs;
    std::vector<bool> bits;
    double released_at_h = 0.0;
    /** Words written into the board's BRAM blocks (bram_channel). */
    std::vector<std::uint64_t> bram_words;
    /** Whether this tenancy ends in an unclean teardown. */
    bool unclean = false;
};

/**
 * The fixed BRAM block every tenancy's route r writes. Stable ids are
 * the channel's Assumption-1 analogue: the attacker reads the same
 * physical blocks the victim wrote.
 */
fabric::ResourceId
bramBlockId(std::size_t r)
{
    fabric::ResourceId id;
    id.type = fabric::ResourceType::Bram;
    id.index = static_cast<std::uint16_t>(r);
    return id;
}

/** One tenancy still computing. */
struct Active
{
    std::string board;
    double ends_at_h = 0.0;
    /** Day the tenant design was created — its identity, for resume. */
    int start_day = 0;
    Tenancy record;
    /** Kept only under journal_stress, for daily burn rotations. */
    std::shared_ptr<fabric::TargetDesign> target;
};

/** Everything the day loop owns; what a checkpoint must capture. */
struct CampaignState
{
    std::unique_ptr<cloud::CloudPlatform> platform;
    util::Rng rng{424261};
    std::vector<Active> active;
    std::vector<Tenancy> finished;
    int next_day = 0;
};

/** Rebuild a tenant design exactly as the rent-time site makes it. */
std::shared_ptr<fabric::TargetDesign>
makeTenantDesign(const Tenancy &tenancy, int start_day, bool golden)
{
    fabric::ArithmeticHeavyConfig arith;
    arith.dsp_count = 128;
    // The design name feeds draw splitting downstream: golden-compat
    // keeps bench/fleet_campaign's historical "tenant_" prefix so the
    // committed golden CSV stays byte-exact.
    return std::make_shared<fabric::TargetDesign>(
        (golden ? "tenant_" : "srv_tenant_") + tenancy.board + "_d" +
            std::to_string(start_day),
        tenancy.specs, tenancy.bits, arith);
}

/** The journal-stress rotation a tenancy carries on day `day`. */
void
applyRotation(const Active &a, int day)
{
    for (std::size_t i = 0; i < a.record.bits.size(); ++i) {
        a.target->setBurnValue(i, (day % 2 == 0) == a.record.bits[i]);
    }
}

void
writeTenancy(util::SnapshotWriter &writer, const Tenancy &tenancy)
{
    writer.str(tenancy.board);
    writer.u64(tenancy.specs.size());
    for (const fabric::RouteSpec &spec : tenancy.specs) {
        writer.str(spec.name);
        writer.f64(spec.target_ps);
        writer.u64(spec.elements.size());
        for (const fabric::ResourceId &id : spec.elements) {
            writer.u64(id.key());
        }
    }
    writer.u64(tenancy.bits.size());
    for (const bool bit : tenancy.bits) {
        writer.u8(bit ? 1 : 0);
    }
    writer.f64(tenancy.released_at_h);
    writer.u64(tenancy.bram_words.size());
    for (const std::uint64_t word : tenancy.bram_words) {
        writer.u64(word);
    }
    writer.u8(tenancy.unclean ? 1 : 0);
}

bool
readTenancy(util::SnapshotReader &reader, Tenancy *tenancy)
{
    tenancy->board = reader.str();
    const std::uint64_t spec_count = reader.u64();
    for (std::uint64_t s = 0; s < spec_count && reader.ok(); ++s) {
        fabric::RouteSpec spec;
        spec.name = reader.str();
        spec.target_ps = reader.f64();
        const std::uint64_t elem_count = reader.u64();
        for (std::uint64_t e = 0; e < elem_count && reader.ok(); ++e) {
            spec.elements.push_back(
                fabric::ResourceId::fromKey(reader.u64()));
        }
        tenancy->specs.push_back(std::move(spec));
    }
    const std::uint64_t bit_count = reader.u64();
    for (std::uint64_t b = 0; b < bit_count && reader.ok(); ++b) {
        tenancy->bits.push_back(reader.u8() != 0);
    }
    tenancy->released_at_h = reader.f64();
    const std::uint64_t word_count = reader.u64();
    for (std::uint64_t w = 0; w < word_count && reader.ok(); ++w) {
        tenancy->bram_words.push_back(reader.u64());
    }
    tenancy->unclean = reader.u8() != 0;
    if (reader.ok() && tenancy->bits.size() != tenancy->specs.size()) {
        reader.fail("checkpoint: tenancy bits/specs length mismatch");
    }
    if (reader.ok() && !tenancy->bram_words.empty() &&
        tenancy->bram_words.size() != tenancy->specs.size()) {
        reader.fail("checkpoint: tenancy BRAM words/specs length "
                    "mismatch");
    }
    return reader.ok();
}

/**
 * Write one rotating checkpoint generation. Failure is reported but
 * non-fatal — a full disk must not kill a long campaign.
 */
void
saveCheckpoint(const CampaignState &state,
               const FleetScanConfig &config)
{
    util::SnapshotWriter writer;
    writer.beginChunk(kSrvCfgTag);
    writer.u64(config.fleet);
    writer.u64(static_cast<std::uint64_t>(config.days));
    writer.u64(config.seed);
    writer.u64(config.routes_per_tenant);
    writer.u64(config.max_measured);
    writer.u8(config.golden_compat ? 1 : 0);
    writer.u8(config.journal_stress ? 1 : 0);
    writer.u8(config.bram_channel ? 1 : 0);
    writer.u8(static_cast<std::uint8_t>(config.bram_scrub));
    writer.u32(config.shard_index);
    writer.u32(config.shard_count);
    writer.endChunk();

    state.platform->saveState(writer);

    writer.beginChunk(kSrvCmpTag);
    writer.u64(static_cast<std::uint64_t>(state.next_day));
    const util::Rng::State rng = state.rng.state();
    for (const std::uint64_t word : rng.words) {
        writer.u64(word);
    }
    writer.f64(rng.cached);
    writer.u8(rng.have_cached ? 1 : 0);
    writer.u64(state.finished.size());
    for (const Tenancy &tenancy : state.finished) {
        writeTenancy(writer, tenancy);
    }
    writer.u64(state.active.size());
    for (const Active &a : state.active) {
        writer.f64(a.ends_at_h);
        writer.u64(static_cast<std::uint64_t>(a.start_day));
        writeTenancy(writer, a.record);
    }
    writer.endChunk();

    const util::Expected<void> committed =
        writer.commitRotating(config.checkpoint_path);
    if (!committed.ok()) {
        util::warn("fleet scan: checkpoint write failed (" +
                   committed.error() + "); continuing without it");
    }
}

/**
 * Restore one checkpoint generation into a freshly built platform.
 * Every corruption path comes back as a recoverable error so the
 * caller can fall through to the previous generation or a fresh run.
 */
util::Expected<CampaignState>
restoreCampaignFrom(const std::string &path,
                    const cloud::PlatformConfig &platform_config,
                    const FleetScanConfig &config)
{
    util::Expected<util::SnapshotReader> opened =
        util::SnapshotReader::open(path);
    if (!opened.ok()) {
        return util::unexpected(opened.error());
    }
    util::SnapshotReader &reader = opened.value();

    if (!reader.enterChunk(kSrvCfgTag)) {
        return util::unexpected(reader.error());
    }
    const std::uint64_t fleet = reader.u64();
    const std::uint64_t saved_days = reader.u64();
    const std::uint64_t seed = reader.u64();
    const std::uint64_t routes = reader.u64();
    const std::uint64_t measured = reader.u64();
    const bool saved_golden = reader.u8() != 0;
    const bool saved_stress = reader.u8() != 0;
    const bool saved_bram = reader.u8() != 0;
    const std::uint8_t saved_scrub = reader.u8();
    const std::uint32_t saved_shard_index = reader.u32();
    const std::uint32_t saved_shard_count = reader.u32();
    if (!reader.leaveChunk()) {
        return util::unexpected(reader.error());
    }
    if (fleet != config.fleet || seed != config.seed ||
        saved_days != static_cast<std::uint64_t>(config.days) ||
        routes != config.routes_per_tenant ||
        measured != config.max_measured ||
        saved_golden != config.golden_compat ||
        saved_stress != config.journal_stress ||
        saved_bram != config.bram_channel ||
        saved_scrub != static_cast<std::uint8_t>(config.bram_scrub) ||
        saved_shard_index != config.shard_index ||
        saved_shard_count != config.shard_count) {
        return util::unexpected(
            "checkpoint was written by a different campaign "
            "(config skew)");
    }

    CampaignState state;
    state.platform =
        std::make_unique<cloud::CloudPlatform>(platform_config);
    std::vector<std::string> boards_with_design;
    const util::Expected<void> restored =
        state.platform->restoreState(reader, &boards_with_design);
    if (!restored.ok()) {
        return util::unexpected(restored.error());
    }

    if (!reader.enterChunk(kSrvCmpTag)) {
        return util::unexpected(reader.error());
    }
    const std::uint64_t next_day = reader.u64();
    util::Rng::State rng;
    for (std::uint64_t &word : rng.words) {
        word = reader.u64();
    }
    rng.cached = reader.f64();
    rng.have_cached = reader.u8() != 0;
    const std::uint64_t finished_count = reader.u64();
    for (std::uint64_t i = 0; i < finished_count && reader.ok(); ++i) {
        Tenancy tenancy;
        if (readTenancy(reader, &tenancy)) {
            state.finished.push_back(std::move(tenancy));
        }
    }
    const std::uint64_t active_count = reader.u64();
    for (std::uint64_t i = 0; i < active_count && reader.ok(); ++i) {
        Active a;
        a.ends_at_h = reader.f64();
        a.start_day = static_cast<int>(reader.u64());
        if (readTenancy(reader, &a.record)) {
            a.board = a.record.board;
            state.active.push_back(std::move(a));
        }
    }
    if (!reader.leaveChunk() || !reader.expectEnd()) {
        return util::unexpected(reader.error());
    }
    if (next_day < 1 ||
        next_day > static_cast<std::uint64_t>(config.days)) {
        return util::unexpected("checkpoint: day cursor out of range");
    }
    state.next_day = static_cast<int>(next_day);
    state.rng.setState(rng);

    // Designs are code, not board state: rebuild each active tenant's
    // design (with the rotation parity it carried at save time, under
    // journal_stress) and re-load it. The restored board's activity
    // state already matches, so the load is flip- and draw-neutral.
    if (boards_with_design.size() != state.active.size()) {
        return util::unexpected(
            "checkpoint: design residency does not match the ledger");
    }
    for (Active &a : state.active) {
        bool listed = false;
        for (const std::string &board : boards_with_design) {
            if (board == a.board) {
                listed = true;
                break;
            }
        }
        if (!listed) {
            return util::unexpected("checkpoint: active board '" +
                                    a.board +
                                    "' has no resident design");
        }
        std::shared_ptr<fabric::TargetDesign> target =
            makeTenantDesign(a.record, a.start_day,
                             config.golden_compat);
        a.target = target;
        if (config.journal_stress) {
            applyRotation(a, state.next_day - 1);
        }
        if (!state.platform->loadDesign(a.board, target).empty()) {
            return util::unexpected(
                "checkpoint: reconstructed tenant design failed DRC");
        }
        if (!config.journal_stress) {
            a.target = nullptr;
        }
    }
    return state;
}

/**
 * TM2 park-and-watch on one re-acquired board: calibrate at takeover,
 * park the victim's routes at 0, record 25 hourly sweeps, classify
 * the recovery slopes.
 */
FleetScanBoardScore
attackBoard(cloud::CloudPlatform &platform,
            const std::string &board_id, const Tenancy &tenancy,
            util::ThreadPool *pool, FleetScanBramScore *bram)
{
    cloud::FpgaInstance &inst = platform.instance(board_id);
    fabric::Device &device = inst.device();
    device.setWorkPool(pool);

    if (bram != nullptr) {
        // BRAM readout must be the attacker's FIRST act: loading the
        // measure design below is a (re)configuration, and
        // configuration zeroes contents. The aging channel has the
        // opposite ordering freedom — the imprint survives any number
        // of loads. A ZeroOnRent scrub already ran inside rent(), so
        // under that policy this loop observes only zeroes.
        bram->board = board_id;
        bram->unclean = tenancy.unclean;
        for (std::size_t r = 0; r < tenancy.bram_words.size(); ++r) {
            const fabric::BramBlock &block =
                device.readBram(bramBlockId(r));
            ++bram->blocks;
            switch (block.state) {
              case fabric::BramState::Decayed:
                ++bram->decayed;
                break;
              case fabric::BramState::Unwritten:
              case fabric::BramState::Zeroed:
                ++bram->zeroed;
                break;
              default:
                break;
            }
            if ((block.state == fabric::BramState::Written ||
                 block.state == fabric::BramState::Retained) &&
                block.content == tenancy.bram_words[r]) {
                ++bram->recovered;
            }
        }
    }

    // Fast sampling: the campaign is measurement-bound, and its
    // accuracy statistics are seed-sweep-equivalent between the exact
    // and fast sampling paths (see tdc_test's FastSampling battery).
    tdc::TdcConfig sensor_config;
    sensor_config.fast_sampling = true;
    auto measure = std::make_shared<tdc::MeasureDesign>(
        device, tenancy.specs, sensor_config);
    if (!platform.loadDesign(board_id, measure).empty()) {
        util::fatal("fleet scan: measure design failed DRC");
    }
    measure->calibrateAll(inst.dieTempK(), inst.rng(), pool);

    auto park = std::make_shared<fabric::Design>("park0_" + board_id);
    for (const fabric::RouteSpec &spec : tenancy.specs) {
        park->setRouteValue(spec, false);
    }
    park->setPowerW(2.0);

    std::vector<core::DeltaSeries> series(tenancy.specs.size());
    double observed = 0.0;
    const auto sweepNow = [&](double hour) {
        if (!platform.loadDesign(board_id, measure).empty()) {
            util::fatal("fleet scan: measure design failed DRC");
        }
        platform.advanceHours(core::kMeasureSettleHours);
        const tdc::MeasurementSweep sweep =
            measure->measureAll(inst.dieTempK(), inst.rng(), pool);
        for (std::size_t i = 0; i < series.size(); ++i) {
            series[i].addPoint(hour, sweep.per_route[i].deltaPs());
        }
    };
    sweepNow(0.0);
    while (observed < kRecoveryHours - 1e-9) {
        if (!platform.loadDesign(board_id, park).empty()) {
            util::fatal("fleet scan: park design failed DRC");
        }
        platform.advanceHours(1.0 - core::kMeasureSettleHours);
        observed += 1.0;
        sweepNow(observed);
    }

    core::ExperimentResult result;
    for (std::size_t i = 0; i < tenancy.specs.size(); ++i) {
        core::RouteRecord record;
        record.name = tenancy.specs[i].name;
        record.target_ps = tenancy.specs[i].target_ps;
        record.burn_value = tenancy.bits[i];
        record.series = series[i].centeredAtFirst();
        result.routes.push_back(std::move(record));
    }
    const core::ClassificationReport report =
        core::ThreatModel2Classifier().classify(result);

    platform.release(board_id);
    device.setWorkPool(nullptr);
    FleetScanBoardScore score;
    score.board = board_id;
    score.bits = report.bits.size();
    score.correct = report.correct;
    score.accuracy = report.accuracy;
    return score;
}

} // namespace

util::Expected<FleetScanResult>
runFleetScan(const FleetScanConfig &config)
{
    if (config.fleet == 0 || config.days <= 0 ||
        config.routes_per_tenant == 0) {
        return util::unexpected("fleet scan: empty scenario");
    }
    if (config.shard_count == 0 ? config.shard_index != 0
                                : config.shard_index >=
                                      config.shard_count) {
        return util::unexpected("fleet scan: shard_index out of range");
    }
    const bool checkpointing = !config.checkpoint_path.empty();

    cloud::PlatformConfig platform_config;
    platform_config.fleet_size = config.fleet;
    platform_config.region = "fleet-sim";
    platform_config.policy =
        cloud::AllocationPolicy::MostRecentlyReleased;
    platform_config.seed = config.seed;
    platform_config.bram_scrub = config.bram_scrub;

    FleetScanResult result;
    CampaignState state;
    bool resumed = false;
    if (checkpointing && config.resume != ResumeMode::Never) {
        // Two-generation retry. Under Auto a missing checkpoint is
        // the normal fresh-run case; corruption or config skew also
        // falls back to a fresh run — resume is an optimisation,
        // never a correctness requirement, because the result is a
        // pure function of the config either way. Require makes both
        // generations failing a hard error (the CLI --resume
        // contract: never silently redo a year you asked to resume).
        util::Expected<CampaignState> attempt = restoreCampaignFrom(
            config.checkpoint_path, platform_config, config);
        bool used_fallback = false;
        std::string primary_error;
        if (!attempt.ok()) {
            primary_error = attempt.error();
            attempt =
                restoreCampaignFrom(config.checkpoint_path + ".prev",
                                    platform_config, config);
            used_fallback = attempt.ok();
        }
        if (attempt.ok()) {
            state = std::move(attempt.value());
            resumed = true;
            result.resumed_from =
                config.checkpoint_path + (used_fallback ? ".prev" : "");
            result.resumed_day = state.next_day;
            result.resumed_finished = state.finished.size();
            result.resumed_active = state.active.size();
            util::inform("fleet scan: resumed at day " +
                         std::to_string(state.next_day));
        } else if (config.resume == ResumeMode::Require) {
            return util::unexpected(
                "cannot resume: " + primary_error +
                " (previous generation also failed: " +
                attempt.error() + ")");
        }
    }
    if (!resumed) {
        state.platform =
            std::make_unique<cloud::CloudPlatform>(platform_config);
        if (!config.golden_compat) {
            // The driver's draw stream is split from the request seed
            // so the tenancy schedule (not just the silicon) re-rolls
            // with it. Golden-compat keeps CampaignState's fixed
            // historical seed — bench/fleet_campaign never re-rolled
            // its driver stream, and the committed golden locks that.
            util::Rng base(config.seed);
            state.rng = base.split("serve_fleet_scan");
        }
    }
    cloud::CloudPlatform &platform = *state.platform;

    // Unclean teardowns bypass the provider's release pipeline (and
    // any ZeroOnRelease scrub) and expose the board's BRAM blocks to
    // an off-power interval. The decision and the interval are pure
    // draws keyed by (board, start day) — never the shared driver
    // stream — so the interconnect channel sees release() and
    // releaseUnclean() identically.
    const auto releaseTenancy = [&](const Active &a) {
        if (config.bram_channel && a.record.unclean) {
            const double off_h =
                util::Rng(config.seed)
                    .split("bram_off_h")
                    .split(a.board)
                    .split(static_cast<std::uint64_t>(a.start_day))
                    .uniform(0.0, kMaxOffPowerH);
            platform.releaseUnclean(a.board, off_h);
        } else {
            platform.release(a.board);
        }
    };

    // Interleaved tenancies in daily ticks: aim for about a third of
    // the region rented at any time, each tenancy burning a random
    // word on its own freshly allocated routes for 2-14 days.
    for (int day = state.next_day; day < config.days; ++day) {
        if (config.throttle_ms_per_day > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                config.throttle_ms_per_day));
        }
        const double now = platform.nowHours();
        for (std::size_t i = state.active.size(); i-- > 0;) {
            if (state.active[i].ends_at_h <= now) {
                state.active[i].record.released_at_h = now;
                releaseTenancy(state.active[i]);
                state.finished.push_back(
                    std::move(state.active[i].record));
                state.active.erase(state.active.begin() +
                                   static_cast<std::ptrdiff_t>(i));
            }
        }
        while (state.active.size() < config.fleet / 3 &&
               state.rng.bernoulli(0.35)) {
            const auto board = platform.rent();
            if (!board) {
                break;
            }
            fabric::Device &device =
                platform.instance(*board).device();
            Tenancy tenancy;
            tenancy.board = *board;
            for (std::size_t r = 0; r < config.routes_per_tenant;
                 ++r) {
                tenancy.specs.push_back(device.allocateRoute(
                    *board + "_d" + std::to_string(day) + "_r" +
                        std::to_string(r),
                    kRouteTargetPs));
                tenancy.bits.push_back(state.rng.bernoulli(0.5));
            }
            auto target = makeTenantDesign(tenancy, day,
                                           config.golden_compat);
            if (!platform.loadDesign(*board, target).empty()) {
                util::fatal("fleet scan: tenant design failed DRC");
            }
            if (config.bram_channel) {
                // Write AFTER the load: configuring the tenant's
                // bitstream zeroed whatever the blocks held. Words
                // and the teardown fate come from fresh pure streams
                // keyed by (board, day) so the shared driver rng —
                // and with it the golden draw sequence — never moves.
                util::Rng words = util::Rng(config.seed)
                                      .split("bram_words")
                                      .split(*board)
                                      .split(static_cast<std::uint64_t>(
                                          day));
                for (std::size_t r = 0; r < config.routes_per_tenant;
                     ++r) {
                    const std::uint64_t word = words();
                    device.writeBram(bramBlockId(r), word);
                    tenancy.bram_words.push_back(word);
                }
                tenancy.unclean =
                    util::Rng(config.seed)
                        .split("bram_unclean")
                        .split(*board)
                        .split(static_cast<std::uint64_t>(day))
                        .bernoulli(kUncleanTeardownP);
            }
            const double duration_h =
                24.0 *
                static_cast<double>(state.rng.uniformInt(2, 14));
            state.active.push_back(
                Active{*board, now + duration_h, day,
                       std::move(tenancy),
                       config.journal_stress ? target : nullptr});
        }
        if (config.journal_stress) {
            // Daily inversion-mitigation-style rotation on every
            // active tenancy: in-place mutations the devices fold in
            // as journal flips at the next advance.
            for (const Active &a : state.active) {
                applyRotation(a, day);
            }
        }
        platform.advanceHours(24.0);

        const int completed = day + 1;
        state.next_day = completed;
        const bool halting =
            config.halt_at_day > 0 && completed >= config.halt_at_day &&
            completed < config.days;
        const bool periodic =
            checkpointing && config.checkpoint_every_days > 0 &&
            completed % config.checkpoint_every_days == 0 &&
            completed < config.days;
        if (periodic || (halting && checkpointing)) {
            saveCheckpoint(state, config);
        }
        if (halting) {
            result.halted_after_day = completed;
            result.tenancies = state.finished.size();
            result.simulated_h = platform.nowHours();
            return result;
        }
        if (config.observer != nullptr &&
            !config.observer->onSweep(
                static_cast<std::size_t>(completed),
                platform.nowHours(), nullptr, 0)) {
            // A final checkpoint before unwinding makes every
            // cancellation (deadline, disconnect, drain, signal)
            // resumable from exactly this day.
            if (checkpointing) {
                saveCheckpoint(state, config);
            }
            throw util::CancelledError(
                "fleet scan cancelled after day " +
                std::to_string(completed));
        }
    }
    // Wind down: everyone still computing releases now.
    for (Active &a : state.active) {
        a.record.released_at_h = platform.nowHours();
        releaseTenancy(a);
        state.finished.push_back(std::move(a.record));
    }
    state.active.clear();

    result.tenancies = state.finished.size();
    result.simulated_h = platform.nowHours();

    // ---- TM2 persistence scan -------------------------------------
    // Flash-acquire recently released boards (LIFO policy) and attack
    // the most recent tenancy on each. Not interruptible: bounded at
    // max_measured * 25 simulated hours, it finishes in well under a
    // deadline tick, and interrupting it mid-measurement would leave
    // the board half-scanned with no valid checkpoint boundary.
    //
    // Acquire first, attack later: releasing mid-scan would hand the
    // LIFO scheduler the same board straight back. Every shard runs
    // this acquisition loop identically — the target list and its
    // order are a pure function of the (identical) simulation phase.
    std::vector<std::pair<std::string, const Tenancy *>> scan_targets;
    std::vector<std::string> skipped;
    while (scan_targets.size() < config.max_measured) {
        const auto board = platform.rent();
        if (!board) {
            break;
        }
        const Tenancy *last = nullptr;
        for (const Tenancy &t : state.finished) {
            if (t.board == *board &&
                (last == nullptr ||
                 t.released_at_h > last->released_at_h)) {
                last = &t;
            }
        }
        if (last == nullptr) {
            skipped.push_back(*board); // virgin stock: nothing to scan
            continue;
        }
        scan_targets.emplace_back(*board, last);
    }
    result.skipped = skipped.size();

    // Shard slice of the target list. Each attack advances the global
    // clock by exactly kRecoveryHours + kMeasureSettleHours (one
    // settle after the takeover sweep, then 25 × [park for
    // 1−settle, settle+sweep]); all of its draws come from the
    // attacked board's own per-instance rng. So an out-of-shard
    // attack is replaced by that exact time advance: every board this
    // shard does attack sees the identical global clock and identical
    // private draw stream as in an unsharded run (partition
    // invariance of advanceHours makes the coarser step exact).
    std::size_t begin = 0;
    std::size_t end = scan_targets.size();
    if (config.shard_count > 0) {
        const std::size_t per =
            (scan_targets.size() + config.shard_count - 1) /
            config.shard_count;
        begin = std::min(scan_targets.size(),
                         static_cast<std::size_t>(config.shard_index) *
                             per);
        end = std::min(scan_targets.size(), begin + per);
    }
    for (std::size_t k = 0; k < end; ++k) {
        if (k < begin) {
            platform.advanceHours(kRecoveryHours +
                                  core::kMeasureSettleHours);
            continue;
        }
        FleetScanBramScore bram;
        result.boards.push_back(attackBoard(
            platform, scan_targets[k].first, *scan_targets[k].second,
            config.pool, config.bram_channel ? &bram : nullptr));
        if (config.bram_channel) {
            result.bram_boards.push_back(std::move(bram));
        }
    }
    for (const std::string &board : skipped) {
        platform.release(board);
    }
    result.bram_scrub_ops = platform.bramScrubOps();

    // ---- journal coverage check (journal_stress) ------------------
    // Force-materialise every board's deferred population and verify
    // it converges exactly to the imprinted listing: a year of
    // journaled tenancies (with daily mitigation flips) must replay
    // without losing or inventing a single element.
    if (config.journal_stress) {
        for (const std::string &id : platform.allInstanceIds()) {
            fabric::Device &device = platform.instance(id).device();
            const std::size_t deferred = device.journaledKeyCount();
            if (deferred == 0) {
                continue;
            }
            const std::vector<fabric::ResourceId> imprinted =
                device.imprintedIds();
            for (const fabric::ResourceId &rid : imprinted) {
                (void)device.element(rid); // materialise + replay
            }
            const std::vector<fabric::ResourceId> materialized =
                device.materializedIds();
            bool converged =
                device.journaledKeyCount() == 0 &&
                materialized.size() == imprinted.size();
            for (std::size_t i = 0; converged && i < imprinted.size();
                 ++i) {
                converged =
                    materialized[i].key() == imprinted[i].key();
            }
            if (!converged) {
                util::fatal("fleet scan: journal coverage check "
                            "failed on " + id);
            }
            ++result.stress_boards;
            result.stress_elements += deferred;
        }
    }
    return result;
}

} // namespace pentimento::serve
