/**
 * @file
 * Minimal blocking client for the campaign-server protocol.
 *
 * Shared by bench/server_loadgen and tests/serve_test so the framing
 * logic (and its hardening) is exercised from both sides of the
 * socket. sendRaw() exists deliberately: the adversarial batteries
 * need to put *wrong* bytes on the wire, not just well-formed frames.
 */

#ifndef PENTIMENTO_SERVE_CLIENT_HPP
#define PENTIMENTO_SERVE_CLIENT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/expected.hpp"

namespace pentimento::serve {

/** Auto-retry policy for shed (RETRY_AFTER) responses. */
struct ClientConfig
{
    /** Retries after a shed; 0 = surface the shed to the caller. */
    std::uint32_t max_retries = 0;
    /** Exponential backoff base, doubled per consecutive shed. */
    std::uint32_t backoff_base_ms = 25;
    /** Ceiling on the backoff term. */
    std::uint32_t backoff_cap_ms = 2000;
    /** Seed of the deterministic retry jitter stream. */
    std::uint64_t jitter_seed = 0;
};

/**
 * Deterministic retry delay for shed attempt `attempt` (0-based):
 * max(server hint, capped exponential backoff), jittered into
 * [delay/2, delay] by a stream derived from (jitter_seed, attempt).
 * A pure function of its arguments — tests can predict every delay.
 */
std::uint32_t retryDelayMs(const ClientConfig &config,
                           std::uint32_t attempt,
                           std::uint32_t server_hint_ms);

/** One blocking client connection. Movable, closes on destruction. */
class ClientConnection
{
  public:
    ClientConnection() = default;
    ~ClientConnection();
    ClientConnection(ClientConnection &&other) noexcept;
    ClientConnection &operator=(ClientConnection &&other) noexcept;
    ClientConnection(const ClientConnection &) = delete;
    ClientConnection &operator=(const ClientConnection &) = delete;

    /** Connect to 127.0.0.1:port. */
    util::Expected<void> connect(std::uint16_t port);

    bool connected() const { return fd_ >= 0; }

    /** Send raw bytes verbatim (for adversarial tests). */
    util::Expected<void> sendRaw(const void *data, std::size_t len);

    /** Frame and send a payload. */
    util::Expected<void> sendFrame(
        FrameType type, const std::vector<std::uint8_t> &payload);

    /**
     * Read until one complete frame arrives (or timeout/EOF/corrupt
     * bytes from the server, each a distinct error message).
     */
    util::Expected<Frame> readFrame(std::uint32_t timeout_ms);

    /**
     * Send `request` and wait for its terminal frame, transparently
     * honoring RETRY_AFTER sheds: up to config.max_retries
     * resubmissions, each after retryDelayMs() of wall clock. Returns
     * the first RESULT frame — or the ERROR frame (including the last
     * shed once retries are exhausted). Not for sweep-streaming
     * requests: SWEEP frames are skipped. `retries` (optional)
     * reports how many sheds were absorbed.
     */
    util::Expected<Frame> call(const Request &request,
                               const ClientConfig &config,
                               std::uint32_t timeout_ms,
                               std::uint32_t *retries = nullptr);

    /** Half-close the write side (mid-request disconnect tests). */
    void closeWrite();

    /** Close now (destructor does this too). */
    void close();

  private:
    int fd_ = -1;
    FrameDecoder decoder_{1u << 24};
};

} // namespace pentimento::serve

#endif // PENTIMENTO_SERVE_CLIENT_HPP
