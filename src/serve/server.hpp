/**
 * @file
 * CampaignServer: the long-running TCP front end of the simulator.
 *
 * Accepts protocol-v1 frames (serve/protocol.hpp) on a loopback/TCP
 * socket and multiplexes the pure entry points — runExperiment1/2/3,
 * runTenancyChurn, and the checkpointed fleet scan — over a bounded
 * executor pool sharing one util::ThreadPool. The robustness
 * contract, end to end:
 *
 *  - **Hostile bytes**: every frame runs through the hardened
 *    FrameDecoder; framing corruption gets one ERROR frame and a
 *    close, CRC-valid-but-malformed payloads get a typed error on a
 *    connection that stays serviceable. Nothing on the request path
 *    calls util::fatal.
 *  - **Slowloris**: a frame must complete within frame_timeout_ms of
 *    its first byte, no matter how slowly the bytes drip.
 *  - **Deadlines**: every request carries (or inherits) a deadline;
 *    long loops poll it at sweep/day checkpoints via the
 *    core::SweepObserver hook and answer DEADLINE_EXCEEDED — no
 *    thread is ever killed.
 *  - **Backpressure**: admission is a bounded queue; when full the
 *    server sheds with RETRY_AFTER instead of queueing unboundedly.
 *    Ping bypasses admission (it is the liveness probe).
 *  - **Drain**: requestDrain() stops accepting, answers new requests
 *    ShuttingDown, cancels in-flight campaigns at their next day
 *    boundary (flushing a final checkpoint) and lets bounded
 *    experiments finish or deadline out.
 *  - **Crash recovery**: fleet-scan campaigns checkpoint under
 *    checkpoint_dir keyed by request id; after kill -9 and restart,
 *    resubmitting the identical request resumes from the latest good
 *    generation and re-delivers byte-identical RESULT bytes.
 *
 * Determinism: a RESULT payload is a pure function of the request
 * (bit-cast doubles, no timestamps), independent of executor
 * interleaving, pool width, arrival order, and crash/resume history.
 */

#ifndef PENTIMENTO_SERVE_SERVER_HPP
#define PENTIMENTO_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "util/expected.hpp"
#include "util/parallel.hpp"

namespace pentimento::serve {

/** Server configuration. */
struct CampaignServerConfig
{
    /** TCP port (0 = ephemeral; read the bound port from port()). */
    std::uint16_t port = 0;
    /** Executor threads draining the admission queue. */
    int executors = 1;
    /** Extra simulation-pool lanes shared by all requests. */
    std::size_t sim_workers = 0;
    /** Admission-queue capacity; beyond it requests shed RETRY_AFTER. */
    std::size_t queue_capacity = 8;
    /** Deadline applied when a request carries none. */
    std::uint32_t default_deadline_ms = 60000;
    /** Hard ceiling on any client-requested deadline. */
    std::uint32_t max_deadline_ms = 600000;
    /** Largest accepted frame payload. */
    std::uint32_t max_payload_bytes = 1u << 20;
    /** A frame must complete within this of its first byte. */
    std::uint32_t frame_timeout_ms = 5000;
    /** Base RETRY_AFTER hint handed to shed clients; the live hint
     *  scales with backlog and consecutive-shed streak. */
    std::uint32_t retry_after_ms = 250;
    /** Ceiling on the load-scaled RETRY_AFTER hint. */
    std::uint32_t retry_after_cap_ms = 10000;
    /** Campaign checkpoint directory ("" disables checkpointing). */
    std::string checkpoint_dir;
};

/** A long-running campaign/experiment simulation server. */
class CampaignServer
{
  public:
    explicit CampaignServer(CampaignServerConfig config);
    ~CampaignServer();

    CampaignServer(const CampaignServer &) = delete;
    CampaignServer &operator=(const CampaignServer &) = delete;

    /** Bind, listen and spin up acceptor + executors. */
    util::Expected<void> start();

    /** Bound TCP port (valid after start()). */
    std::uint16_t port() const { return bound_port_; }

    /**
     * Graceful drain (the SIGTERM path): stop accepting, answer new
     * requests ShuttingDown, cancel campaigns at their next
     * checkpoint boundary. Returns immediately; stop() waits.
     */
    void requestDrain();

    /** True once requestDrain()/stop() has been called. */
    bool draining() const
    {
        return draining_.load(std::memory_order_relaxed);
    }

    /** Drain, wait for in-flight work, join every thread, close. */
    void stop();

  private:
    struct Conn;
    class RequestObserver;

    /** One admitted request waiting for (or holding) an executor. */
    struct Job
    {
        std::shared_ptr<Conn> conn;
        Request request;
        /** Deadlines start at admission, not at dequeue. */
        std::chrono::steady_clock::time_point arrival{};
    };

    void acceptLoop();
    void readerLoop(std::shared_ptr<Conn> conn);
    /** @return false when the connection must close. */
    bool handleFrame(const std::shared_ptr<Conn> &conn,
                     const Frame &frame);
    void executorLoop();
    void process(const Job &job);
    static bool sendFrame(Conn &conn, FrameType type,
                          const std::vector<std::uint8_t> &payload);
    static void sendError(Conn &conn, std::uint64_t request_id,
                          ErrorCode code, std::uint32_t retry_after_ms,
                          const std::string &message);
    std::string campaignCheckpointPath(std::uint64_t request_id) const;

    CampaignServerConfig config_;
    int listen_fd_ = -1;
    std::uint16_t bound_port_ = 0;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> draining_{false};

    std::unique_ptr<util::ThreadPool> pool_;
    std::thread acceptor_;
    std::vector<std::thread> executors_;

    std::mutex conn_mutex_;
    std::vector<std::shared_ptr<Conn>> conns_;
    std::vector<std::thread> readers_;

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::condition_variable idle_cv_;
    std::deque<Job> queue_;
    std::size_t in_flight_ = 0;
    /** Consecutive sheds since the last admit (under queue_mutex_). */
    std::size_t shed_streak_ = 0;
};

} // namespace pentimento::serve

#endif // PENTIMENTO_SERVE_SERVER_HPP
