#include "serve/protocol.hpp"

#include <cmath>
#include <cstring>

namespace pentimento::serve {

namespace {

// Hard caps on every request dimension. The service boundary promises
// bounded work per admitted request; deadlines bound wall-clock, these
// bound memory and per-sweep cost. All deliberately generous next to
// the paper's configurations (64 routes, 200 h burns).
constexpr std::size_t kMaxGroups = 8;
constexpr std::uint32_t kMaxRoutesPerGroup = 64;
constexpr std::size_t kMaxTotalRoutes = 512;
constexpr double kMinTargetPs = 100.0;
constexpr double kMaxTargetPs = 1e6;
constexpr double kMaxConditionHours = 2400.0;
constexpr double kMinMeasureEveryH = 0.25;
constexpr double kMaxMeasureEveryH = 48.0;
constexpr double kMaxAttackerWaitH = 8760.0;
constexpr std::uint32_t kMaxTenancies = 512;
constexpr std::uint32_t kMaxChurnRoutes = 64;
constexpr double kMaxChurnHours = 720.0;
constexpr std::uint32_t kMaxDsp = 4096;
constexpr std::uint32_t kMaxFleet = 256;
constexpr std::uint32_t kMaxDays = 3650;
constexpr std::uint32_t kMaxScanRoutes = 32;
constexpr std::uint32_t kMaxMeasuredBoards = 16;
constexpr std::uint32_t kMaxThrottleMs = 50;

/** Build an InvalidArgument DecodeError bound to a request id. */
std::optional<DecodeError>
invalid(std::uint64_t id, std::string message)
{
    return DecodeError{ErrorCode::InvalidArgument, std::move(message),
                       id};
}

bool
finiteIn(double v, double lo, double hi)
{
    return std::isfinite(v) && v >= lo && v <= hi;
}

/** Decode + validate the shared route-group list. */
std::optional<DecodeError>
decodeGroups(WireReader &reader, std::uint64_t id,
             std::vector<WireRouteGroup> *out)
{
    const std::uint32_t n = reader.u32();
    if (!reader.ok()) {
        return std::nullopt; // structural error reported by caller
    }
    if (n < 1 || n > kMaxGroups) {
        return invalid(id, "route group count out of range");
    }
    std::size_t total = 0;
    for (std::uint32_t g = 0; g < n; ++g) {
        WireRouteGroup group;
        group.target_ps = reader.f64();
        group.count = reader.u32();
        if (!reader.ok()) {
            return std::nullopt;
        }
        if (!finiteIn(group.target_ps, kMinTargetPs, kMaxTargetPs)) {
            return invalid(id, "route group target_ps out of range");
        }
        if (group.count < 1 || group.count > kMaxRoutesPerGroup) {
            return invalid(id, "route group count out of range");
        }
        total += group.count;
        out->push_back(group);
    }
    if (total > kMaxTotalRoutes) {
        return invalid(id, "too many routes requested");
    }
    return std::nullopt;
}

} // namespace

std::optional<DecodeError>
decodeRequest(const std::vector<std::uint8_t> &payload, Request *out)
{
    WireReader reader(payload.data(), payload.size());
    const std::uint32_t version = reader.u32();
    out->request_id = reader.u64();
    out->seed = reader.u64();
    out->deadline_ms = reader.u32();
    out->flags = reader.u32();
    const std::uint8_t kind_raw = reader.u8();
    if (!reader.ok()) {
        return DecodeError{ErrorCode::Malformed,
                           "request header: " + reader.error(), 0};
    }
    const std::uint64_t id = out->request_id;
    if (version != kProtocolVersion) {
        return DecodeError{ErrorCode::Unsupported,
                           "unsupported protocol version", id};
    }
    if (id == 0) {
        return invalid(0, "request_id must be nonzero");
    }
    if ((out->flags & ~(kFlagStreamSweeps | kFlagGoldenCampaign)) != 0) {
        return DecodeError{ErrorCode::Unsupported,
                           "unknown request flags", id};
    }
    if (kind_raw < static_cast<std::uint8_t>(RequestKind::Ping) ||
        kind_raw > static_cast<std::uint8_t>(RequestKind::FleetScan)) {
        return DecodeError{ErrorCode::Unsupported,
                           "unknown request kind", id};
    }
    out->kind = static_cast<RequestKind>(kind_raw);

    switch (out->kind) {
      case RequestKind::Ping:
        break;

      case RequestKind::Experiment1:
      case RequestKind::Experiment2:
      case RequestKind::Experiment3: {
        out->burn_hours = reader.f64();
        if (out->kind != RequestKind::Experiment2) {
            out->recovery_hours = reader.f64();
        }
        out->measure_every_h = reader.f64();
        if (out->kind == RequestKind::Experiment3) {
            out->attacker_wait_h = reader.f64();
            out->park_value = reader.u8() != 0;
        }
        if (auto err = decodeGroups(reader, id, &out->groups)) {
            return err;
        }
        if (!reader.ok()) {
            break; // structural error handled below
        }
        if (!finiteIn(out->burn_hours, kMinMeasureEveryH,
                      kMaxConditionHours)) {
            return invalid(id, "burn_hours out of range");
        }
        if (!finiteIn(out->recovery_hours, 0.0, kMaxConditionHours)) {
            return invalid(id, "recovery_hours out of range");
        }
        if (!finiteIn(out->measure_every_h, kMinMeasureEveryH,
                      kMaxMeasureEveryH)) {
            return invalid(id, "measure_every_h out of range");
        }
        if (!finiteIn(out->attacker_wait_h, 0.0, kMaxAttackerWaitH)) {
            return invalid(id, "attacker_wait_h out of range");
        }
        break;
      }

      case RequestKind::TenancyChurn: {
        out->tenancies = reader.u32();
        out->routes_per_tenant = reader.u32();
        out->burn_hours_min = reader.f64();
        out->burn_hours_max = reader.f64();
        out->idle_hours = reader.f64();
        out->midflip = reader.u8() != 0;
        out->observe_last = reader.u32();
        out->dsp_count = reader.u32();
        if (!reader.ok()) {
            break;
        }
        if (out->tenancies < 1 || out->tenancies > kMaxTenancies) {
            return invalid(id, "tenancies out of range");
        }
        if (out->routes_per_tenant < 1 ||
            out->routes_per_tenant > kMaxChurnRoutes) {
            return invalid(id, "routes_per_tenant out of range");
        }
        if (!finiteIn(out->burn_hours_min, 1.0, kMaxChurnHours) ||
            !finiteIn(out->burn_hours_max, out->burn_hours_min,
                      kMaxChurnHours)) {
            return invalid(id, "burn-hour range invalid");
        }
        if (!finiteIn(out->idle_hours, 0.0, kMaxChurnHours)) {
            return invalid(id, "idle_hours out of range");
        }
        if (out->observe_last > out->tenancies) {
            return invalid(id, "observe_last exceeds tenancies");
        }
        if (out->dsp_count > kMaxDsp) {
            return invalid(id, "dsp_count out of range");
        }
        break;
      }

      case RequestKind::FleetScan: {
        out->fleet = reader.u32();
        out->days = reader.u32();
        out->scan_routes_per_tenant = reader.u32();
        out->max_measured = reader.u32();
        out->checkpoint_every_days = reader.u32();
        out->throttle_ms_per_day = reader.u32();
        out->shard_index = reader.u32();
        out->shard_count = reader.u32();
        if (!reader.ok()) {
            break;
        }
        if (out->fleet < 1 || out->fleet > kMaxFleet) {
            return invalid(id, "fleet out of range");
        }
        if (out->days < 1 || out->days > kMaxDays) {
            return invalid(id, "days out of range");
        }
        if (out->scan_routes_per_tenant < 1 ||
            out->scan_routes_per_tenant > kMaxScanRoutes) {
            return invalid(id, "routes_per_tenant out of range");
        }
        if (out->max_measured > kMaxMeasuredBoards) {
            return invalid(id, "max_measured out of range");
        }
        if (out->checkpoint_every_days > kMaxDays) {
            return invalid(id, "checkpoint_every_days out of range");
        }
        if (out->throttle_ms_per_day > kMaxThrottleMs) {
            return invalid(id, "throttle_ms_per_day out of range");
        }
        if (out->shard_count > kMaxShards) {
            return invalid(id, "shard_count out of range");
        }
        if (out->shard_count == 0 ? out->shard_index != 0
                                  : out->shard_index >= out->shard_count) {
            return invalid(id, "shard_index out of range");
        }
        break;
      }
    }

    if (!reader.ok()) {
        return DecodeError{ErrorCode::Malformed,
                           "request body: " + reader.error(), id};
    }
    if (!reader.atEnd()) {
        return DecodeError{ErrorCode::Malformed,
                           "request body: trailing bytes", id};
    }
    return std::nullopt;
}

std::vector<std::uint8_t>
encodeRequest(const Request &request)
{
    WireWriter w;
    w.u32(kProtocolVersion);
    w.u64(request.request_id);
    w.u64(request.seed);
    w.u32(request.deadline_ms);
    w.u32(request.flags);
    w.u8(static_cast<std::uint8_t>(request.kind));
    switch (request.kind) {
      case RequestKind::Ping:
        break;
      case RequestKind::Experiment1:
      case RequestKind::Experiment2:
      case RequestKind::Experiment3:
        w.f64(request.burn_hours);
        if (request.kind != RequestKind::Experiment2) {
            w.f64(request.recovery_hours);
        }
        w.f64(request.measure_every_h);
        if (request.kind == RequestKind::Experiment3) {
            w.f64(request.attacker_wait_h);
            w.u8(request.park_value ? 1 : 0);
        }
        w.u32(static_cast<std::uint32_t>(request.groups.size()));
        for (const WireRouteGroup &group : request.groups) {
            w.f64(group.target_ps);
            w.u32(group.count);
        }
        break;
      case RequestKind::TenancyChurn:
        w.u32(request.tenancies);
        w.u32(request.routes_per_tenant);
        w.f64(request.burn_hours_min);
        w.f64(request.burn_hours_max);
        w.f64(request.idle_hours);
        w.u8(request.midflip ? 1 : 0);
        w.u32(request.observe_last);
        w.u32(request.dsp_count);
        break;
      case RequestKind::FleetScan:
        w.u32(request.fleet);
        w.u32(request.days);
        w.u32(request.scan_routes_per_tenant);
        w.u32(request.max_measured);
        w.u32(request.checkpoint_every_days);
        w.u32(request.throttle_ms_per_day);
        w.u32(request.shard_index);
        w.u32(request.shard_count);
        break;
    }
    return w.take();
}

std::vector<std::uint8_t>
encodePingResult(std::uint64_t request_id)
{
    WireWriter w;
    w.u64(request_id);
    w.u8(static_cast<std::uint8_t>(RequestKind::Ping));
    w.u32(kProtocolVersion);
    return w.take();
}

std::vector<std::uint8_t>
encodeExperimentResult(std::uint64_t request_id, RequestKind kind,
                       const core::ExperimentResult &result)
{
    WireWriter w;
    w.u64(request_id);
    w.u8(static_cast<std::uint8_t>(kind));
    w.u64(result.sweeps);
    w.f64(result.condition_hours);
    w.f64(result.measure_seconds);
    w.u32(static_cast<std::uint32_t>(result.routes.size()));
    for (const core::RouteRecord &route : result.routes) {
        w.str(route.name);
        w.f64(route.target_ps);
        w.u8(route.burn_value ? 1 : 0);
        const auto &hours = route.series.hours();
        const auto &values = route.series.values();
        w.u32(static_cast<std::uint32_t>(hours.size()));
        for (std::size_t i = 0; i < hours.size(); ++i) {
            w.f64(hours[i]);
            w.f64(values[i]);
        }
    }
    return w.take();
}

std::vector<std::uint8_t>
encodeChurnResult(std::uint64_t request_id,
                  const core::TenancyChurnResult &result)
{
    WireWriter w;
    w.u64(request_id);
    w.u8(static_cast<std::uint8_t>(RequestKind::TenancyChurn));
    w.u64(result.materialized);
    w.u64(result.journaled);
    w.f64(result.elapsed_h);
    w.u32(static_cast<std::uint32_t>(result.observed_delays_ps.size()));
    for (const double delay : result.observed_delays_ps) {
        w.f64(delay);
    }
    return w.take();
}

std::vector<std::uint8_t>
encodeFleetScanResult(std::uint64_t request_id,
                      const FleetScanResult &result)
{
    WireWriter w;
    w.u64(request_id);
    w.u8(static_cast<std::uint8_t>(RequestKind::FleetScan));
    w.u64(result.tenancies);
    w.f64(result.simulated_h);
    w.u64(result.skipped);
    w.u32(static_cast<std::uint32_t>(result.boards.size()));
    for (const FleetScanBoardScore &score : result.boards) {
        w.str(score.board);
        w.u64(score.bits);
        w.u64(score.correct);
        w.f64(score.accuracy);
    }
    return w.take();
}

util::Expected<FleetScanResult>
decodeFleetScanResult(const std::vector<std::uint8_t> &payload,
                      std::uint64_t *request_id)
{
    WireReader reader(payload.data(), payload.size());
    *request_id = reader.u64();
    const std::uint8_t kind = reader.u8();
    FleetScanResult result;
    result.tenancies = reader.u64();
    result.simulated_h = reader.f64();
    result.skipped = reader.u64();
    const std::uint32_t count = reader.u32();
    if (!reader.ok()) {
        return util::unexpected("fleet-scan result: " + reader.error());
    }
    if (kind != static_cast<std::uint8_t>(RequestKind::FleetScan)) {
        return util::unexpected("fleet-scan result: wrong kind");
    }
    if (count > kMaxFleet) {
        return util::unexpected("fleet-scan result: board count "
                                "out of range");
    }
    result.boards.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        FleetScanBoardScore score;
        score.board = reader.str();
        score.bits = reader.u64();
        score.correct = reader.u64();
        score.accuracy = reader.f64();
        if (!reader.ok()) {
            return util::unexpected("fleet-scan result: " +
                                    reader.error());
        }
        result.boards.push_back(std::move(score));
    }
    if (!reader.atEnd()) {
        return util::unexpected("fleet-scan result: trailing bytes");
    }
    return result;
}

std::vector<std::uint8_t>
encodeSweep(std::uint64_t request_id, std::uint32_t sweep_index,
            double hour, const double *delta_ps, std::size_t n_routes)
{
    WireWriter w;
    w.u64(request_id);
    w.u32(sweep_index);
    w.f64(hour);
    w.u32(static_cast<std::uint32_t>(n_routes));
    for (std::size_t i = 0; i < n_routes; ++i) {
        w.f64(delta_ps[i]);
    }
    return w.take();
}

std::vector<std::uint8_t>
encodeError(std::uint64_t request_id, ErrorCode code,
            std::uint32_t retry_after_ms, std::string_view message)
{
    WireWriter w;
    w.u64(request_id);
    w.u32(static_cast<std::uint32_t>(code));
    w.u32(retry_after_ms);
    w.str(message);
    return w.take();
}

std::optional<ErrorInfo>
decodeError(const std::vector<std::uint8_t> &payload)
{
    WireReader reader(payload.data(), payload.size());
    ErrorInfo info;
    info.request_id = reader.u64();
    const std::uint32_t code = reader.u32();
    info.retry_after_ms = reader.u32();
    info.message = reader.str();
    if (!reader.ok() || !reader.atEnd() ||
        code < static_cast<std::uint32_t>(ErrorCode::Malformed) ||
        code > static_cast<std::uint32_t>(ErrorCode::ShuttingDown)) {
        return std::nullopt;
    }
    info.code = static_cast<ErrorCode>(code);
    return info;
}

std::vector<std::uint8_t>
encodeFrame(FrameType type, const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(16 + payload.size());
    WireWriter header;
    header.u32(kFrameMagic);
    header.u32(static_cast<std::uint32_t>(type));
    header.u32(static_cast<std::uint32_t>(payload.size()));
    out = header.take();
    out.insert(out.end(), payload.begin(), payload.end());
    // CRC covers type + length + payload (everything after the magic).
    const std::uint32_t crc =
        util::crc32c(out.data() + 4, out.size() - 4);
    WireWriter tail;
    tail.u32(crc);
    const auto &tail_bytes = tail.bytes();
    out.insert(out.end(), tail_bytes.begin(), tail_bytes.end());
    return out;
}

void
FrameDecoder::feed(const void *data, std::size_t len)
{
    if (corrupt_) {
        return;
    }
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + len);
}

FrameDecoder::Status
FrameDecoder::next(Frame *out)
{
    if (corrupt_) {
        return Status::Corrupt;
    }
    constexpr std::size_t kHeaderLen = 12;
    // The magic is checked as soon as four bytes exist: a peer whose
    // very first word is wrong is garbage, not a slow frame, and must
    // be refused immediately rather than at the frame timeout.
    if (buffer_.size() >= 4) {
        WireReader magic_reader(buffer_.data(), 4);
        if (magic_reader.u32() != kFrameMagic) {
            corrupt_ = true;
            error_ = "frame: bad magic";
            return Status::Corrupt;
        }
    }
    if (buffer_.size() < kHeaderLen) {
        return Status::NeedMore;
    }
    WireReader header(buffer_.data(), kHeaderLen);
    (void)header.u32(); // magic, verified above
    const std::uint32_t type = header.u32();
    const std::uint32_t payload_len = header.u32();
    // Reject the declared length BEFORE buffering the payload: an
    // attacker announcing 4 GiB must cost us 12 bytes, not 4 GiB.
    if (payload_len > max_payload_) {
        corrupt_ = true;
        error_ = "frame: declared payload exceeds limit";
        return Status::Corrupt;
    }
    const std::size_t total = kHeaderLen + payload_len + 4;
    if (buffer_.size() < total) {
        return Status::NeedMore;
    }
    const std::uint32_t expected =
        util::crc32c(buffer_.data() + 4, 8 + payload_len);
    WireReader crc_reader(buffer_.data() + kHeaderLen + payload_len, 4);
    const std::uint32_t actual = crc_reader.u32();
    if (expected != actual) {
        corrupt_ = true;
        error_ = "frame: checksum mismatch";
        return Status::Corrupt;
    }
    if (type < static_cast<std::uint32_t>(FrameType::Request) ||
        type > static_cast<std::uint32_t>(FrameType::Sweep)) {
        // CRC-valid but unknown type: the boundary is sound, so this
        // is a frame-level error the caller can answer in-band. Still
        // conservative enough to poison: a peer speaking a newer
        // protocol revision is better refused than half-understood.
        corrupt_ = true;
        error_ = "frame: unknown frame type";
        return Status::Corrupt;
    }
    out->type = static_cast<FrameType>(type);
    out->payload.assign(buffer_.begin() +
                            static_cast<std::ptrdiff_t>(kHeaderLen),
                        buffer_.begin() +
                            static_cast<std::ptrdiff_t>(kHeaderLen +
                                                        payload_len));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(total));
    return Status::Ready;
}

} // namespace pentimento::serve
