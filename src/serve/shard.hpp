/**
 * @file
 * Fault-tolerant shard supervisor for fleet-scan campaigns.
 *
 * Partitions the TM2 scan of a fleet campaign into board-range shards
 * and farms each shard out to its own worker *process* (a
 * campaign_server in --worker mode), so a crashed, killed or wedged
 * worker can never take the campaign down with it. Each shard worker
 * runs the cheap simulation phase identically and attacks only its
 * slice of the deterministic scan-target list; the supervisor merges
 * shard results by concatenation in shard order, which the engine's
 * partition-invariance guarantees is byte-identical to an unsharded
 * run — regardless of shard count, worker deaths, retry order or
 * injected faults.
 *
 * Failure handling per shard, all bounded and deterministic:
 *
 *  - **Crash** (exit/kill -9): detected via waitpid; a fresh worker is
 *    spawned and the request resubmitted. With a checkpoint directory
 *    configured the new worker resumes the shard from its latest good
 *    checkpoint generation.
 *  - **Stall**: the supervisor pings the worker every heartbeat_ms
 *    while waiting; stall_timeout_ms without any frame is a hang —
 *    the worker is killed and replaced.
 *  - **Orphaned run** (transport error, worker alive): the supervisor
 *    reconnects to the *same* worker and resubmits; the server cancels
 *    the orphaned run at its next day boundary (flushing a
 *    checkpoint) and the resubmission resumes from it.
 *  - **Shed** (RETRY_AFTER): honoured with the same deterministic
 *    capped-exponential backoff used between respawn attempts.
 *
 * Retries per shard are capped at max_attempts; delays come from
 * shardRetryDelayMs(), a pure function of (seed, shard, attempt), so
 * a chaos schedule replays identically.
 */

#ifndef PENTIMENTO_SERVE_SHARD_HPP
#define PENTIMENTO_SERVE_SHARD_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/expected.hpp"

namespace pentimento::serve {

/** Supervisor configuration for one sharded fleet-scan campaign. */
struct ShardSupervisorConfig
{
    /** campaign_server binary to spawn as shard workers. */
    std::string worker_binary;
    /** Shared checkpoint directory ("" = no crash resume). */
    std::string checkpoint_dir;
    /** Shards to partition the scan into (1..kMaxShards). */
    std::uint32_t shard_count = 2;
    /**
     * FleetScan request template. request_id, shard_index and
     * shard_count are overwritten per shard (ids are 1-based shard
     * numbers so checkpoint files key stably across restarts).
     */
    Request request;
    /** Ping cadence while waiting on a shard result. */
    std::uint32_t heartbeat_ms = 1000;
    /** No frame at all for this long = wedged worker, kill it. */
    std::uint32_t stall_timeout_ms = 20000;
    /** Attempts per shard (spawn/connect/submit cycles) before the
     *  whole campaign fails. */
    std::uint32_t max_attempts = 8;
    /** Seed of the deterministic retry-backoff jitter. */
    std::uint64_t backoff_seed = 0;
    std::uint32_t backoff_base_ms = 50;
    std::uint32_t backoff_cap_ms = 2000;
    /** Worker must print its port line within this long of spawn. */
    std::uint32_t spawn_timeout_ms = 20000;
};

/** Per-shard accounting of how the result was obtained. */
struct ShardOutcome
{
    std::uint32_t shard_index = 0;
    /** Submit attempts consumed (1 = clean first try). */
    std::uint32_t attempts = 0;
    /** Workers spawned for this shard (1 = original survived). */
    std::uint32_t workers_spawned = 0;
    FleetScanResult result;
};

/** Merged campaign result plus per-shard accounting. */
struct ShardedScanResult
{
    FleetScanResult merged;
    std::vector<ShardOutcome> shards;
};

/**
 * Deterministic supervisor retry delay for shard `shard`, attempt
 * `attempt` (0-based): capped exponential backoff jittered into
 * [delay/2, delay] by a stream derived from (seed, shard, attempt).
 * Pure function of its arguments — a chaos run's retry timing is
 * replayable and independent of cross-shard interleaving.
 */
std::uint32_t shardRetryDelayMs(std::uint64_t seed, std::uint32_t shard,
                                std::uint32_t attempt,
                                std::uint32_t base_ms,
                                std::uint32_t cap_ms);

/**
 * Merge per-shard results (indexed by shard) into the unsharded
 * equivalent: asserts the shards agree on the shared simulation phase
 * (tenancies, simulated hours, skipped count — they ran it
 * identically) and concatenates board scores in shard order. Exposed
 * separately so tests can exercise the merge without processes.
 */
util::Expected<FleetScanResult> mergeShardResults(
    const std::vector<FleetScanResult> &shard_results);

/**
 * Run one fleet-scan campaign across config.shard_count worker
 * processes and merge the results. Blocks until every shard succeeds
 * or one exhausts max_attempts (the error names the shard and its
 * last failure). All spawned workers are dead by return.
 */
util::Expected<ShardedScanResult> runShardedFleetScan(
    const ShardSupervisorConfig &config);

} // namespace pentimento::serve

#endif // PENTIMENTO_SERVE_SHARD_HPP
