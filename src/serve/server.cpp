#include "serve/server.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "core/experiment.hpp"
#include "core/presets.hpp"
#include "serve/campaign.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

namespace pentimento::serve {

using Clock = std::chrono::steady_clock;

/** One client connection. The fd closes with the last reference. */
struct CampaignServer::Conn
{
    explicit Conn(int f) : fd(f) {}
    ~Conn()
    {
        if (fd >= 0) {
            ::close(fd);
        }
    }
    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    int fd = -1;
    /** Serialises whole frames: an executor's RESULT and a reader's
     *  ERROR must never interleave on the wire. */
    std::mutex write_mutex;
    std::atomic<bool> peer_gone{false};
};

/**
 * The per-request SweepObserver: streams sweeps when asked, and turns
 * deadline expiry / client disconnect / server drain into a
 * cooperative cancel at the next checkpoint. why() tells process()
 * which ERROR (if any) to answer with.
 */
class CampaignServer::RequestObserver : public core::SweepObserver
{
  public:
    enum class Why
    {
        None,
        Deadline,
        Disconnected,
        Draining,
    };

    RequestObserver(CampaignServer &server, Conn &conn,
                    const Request &request, Clock::time_point deadline)
        : server_(server), conn_(conn), request_(request),
          deadline_(deadline)
    {
    }

    bool
    onSweep(std::size_t sweep_index, double hour,
            const double *delta_ps, std::size_t n_routes) override
    {
        if (request_.streamSweeps() && n_routes > 0) {
            if (!sendFrame(conn_, FrameType::Sweep,
                           encodeSweep(request_.request_id,
                                       static_cast<std::uint32_t>(
                                           sweep_index),
                                       hour, delta_ps, n_routes))) {
                why_ = Why::Disconnected;
                return false;
            }
        }
        if (conn_.peer_gone.load(std::memory_order_relaxed)) {
            why_ = Why::Disconnected;
            return false;
        }
        if (Clock::now() >= deadline_) {
            why_ = Why::Deadline;
            return false;
        }
        // Drain only cancels campaigns: they checkpoint and resume,
        // while experiments are bounded and cheaper to finish than to
        // redo from scratch.
        if (server_.draining() &&
            request_.kind == RequestKind::FleetScan) {
            why_ = Why::Draining;
            return false;
        }
        return true;
    }

    Why why() const { return why_; }

  private:
    CampaignServer &server_;
    Conn &conn_;
    const Request &request_;
    Clock::time_point deadline_;
    Why why_ = Why::None;
};

CampaignServer::CampaignServer(CampaignServerConfig config)
    : config_(std::move(config))
{
}

CampaignServer::~CampaignServer()
{
    stop();
}

util::Expected<void>
CampaignServer::start()
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        return util::unexpected(std::string("socket: ") +
                                std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(config_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        const std::string error = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return util::unexpected("bind: " + error);
    }
    if (::listen(listen_fd_, 64) < 0) {
        const std::string error = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return util::unexpected("listen: " + error);
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) < 0) {
        const std::string error = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return util::unexpected("getsockname: " + error);
    }
    bound_port_ = ntohs(bound.sin_port);

    pool_ = std::make_unique<util::ThreadPool>(config_.sim_workers);
    const int executors = config_.executors > 0 ? config_.executors : 1;
    executors_.reserve(static_cast<std::size_t>(executors));
    for (int i = 0; i < executors; ++i) {
        executors_.emplace_back([this] { executorLoop(); });
    }
    acceptor_ = std::thread([this] { acceptLoop(); });
    util::inform("campaign server listening on port " +
                 std::to_string(bound_port_));
    return {};
}

void
CampaignServer::requestDrain()
{
    draining_.store(true, std::memory_order_relaxed);
}

void
CampaignServer::stop()
{
    if (listen_fd_ < 0 && !acceptor_.joinable()) {
        return; // never started, or already stopped
    }
    requestDrain();
    // Wait for the queue to empty and in-flight work to answer (a
    // draining campaign cancels at its next day boundary, writing its
    // final checkpoint on the way out).
    {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        idle_cv_.wait(lock, [this] {
            return queue_.empty() && in_flight_ == 0;
        });
    }
    stopping_.store(true, std::memory_order_relaxed);
    queue_cv_.notify_all();
    if (acceptor_.joinable()) {
        acceptor_.join();
    }
    for (std::thread &executor : executors_) {
        if (executor.joinable()) {
            executor.join();
        }
    }
    executors_.clear();
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        for (const std::shared_ptr<Conn> &conn : conns_) {
            ::shutdown(conn->fd, SHUT_RDWR);
        }
    }
    for (std::thread &reader : readers_) {
        if (reader.joinable()) {
            reader.join();
        }
    }
    readers_.clear();
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        conns_.clear();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    pool_.reset();
}

void
CampaignServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_relaxed) && !draining()) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 100);
        if (rc < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;
        }
        if (rc == 0) {
            continue;
        }
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_shared<Conn>(fd);
        std::lock_guard<std::mutex> lock(conn_mutex_);
        conns_.push_back(conn);
        readers_.emplace_back(
            [this, conn = std::move(conn)] { readerLoop(conn); });
    }
}

void
CampaignServer::readerLoop(std::shared_ptr<Conn> conn)
{
    FrameDecoder decoder(config_.max_payload_bytes);
    Clock::time_point frame_start{};
    bool mid_frame = false;
    bool close_now = false;
    std::uint8_t buf[4096];
    while (!stopping_.load(std::memory_order_relaxed) && !close_now) {
        if (mid_frame &&
            Clock::now() - frame_start >
                std::chrono::milliseconds(config_.frame_timeout_ms)) {
            // Slowloris defense: however slowly the bytes drip, a
            // frame has frame_timeout_ms from its first byte.
            sendError(*conn, 0, ErrorCode::Malformed, 0,
                      "frame timed out mid-transmission");
            break;
        }
        pollfd pfd{conn->fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 100);
        if (rc < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;
        }
        if (rc == 0) {
            continue;
        }
        const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n <= 0) {
            conn->peer_gone.store(true, std::memory_order_relaxed);
            break;
        }
        decoder.feed(buf, static_cast<std::size_t>(n));
        Frame frame;
        while (!close_now) {
            const FrameDecoder::Status status = decoder.next(&frame);
            if (status == FrameDecoder::Status::NeedMore) {
                break;
            }
            if (status == FrameDecoder::Status::Corrupt) {
                // One ERROR frame, then close: past a framing error
                // the stream has no trustworthy resync point.
                sendError(*conn, 0, ErrorCode::Malformed, 0,
                          decoder.error());
                close_now = true;
                break;
            }
            if (!handleFrame(conn, frame)) {
                close_now = true;
            }
        }
        if (!close_now) {
            const bool now_mid = decoder.midFrame();
            if (now_mid && !mid_frame) {
                frame_start = Clock::now();
            }
            mid_frame = now_mid;
        }
    }
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->peer_gone.store(true, std::memory_order_relaxed);
}

bool
CampaignServer::handleFrame(const std::shared_ptr<Conn> &conn,
                            const Frame &frame)
{
    if (frame.type != FrameType::Request) {
        sendError(*conn, 0, ErrorCode::Unsupported, 0,
                  "only REQUEST frames are accepted from clients");
        return false;
    }
    Request request;
    if (const auto error = decodeRequest(frame.payload, &request)) {
        // CRC-valid but malformed payload: the frame boundary is
        // intact, so answer in-band and keep the connection.
        sendError(*conn, error->request_id, error->code, 0,
                  error->message);
        return true;
    }
    if (request.kind == RequestKind::Ping) {
        // Liveness probe: answered inline, bypassing admission, so a
        // saturated server is still observable as alive-but-shedding.
        sendFrame(*conn, FrameType::Result,
                  encodePingResult(request.request_id));
        return true;
    }
    if (draining()) {
        sendError(*conn, request.request_id, ErrorCode::ShuttingDown,
                  0, "server is draining");
        return true;
    }
    const std::uint64_t request_id = request.request_id;
    bool admitted = false;
    std::uint32_t hint_ms = 0;
    {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (queue_.size() < config_.queue_capacity) {
            queue_.push_back(
                Job{conn, std::move(request), Clock::now()});
            shed_streak_ = 0;
            admitted = true;
        } else {
            // Load-aware hint: the base scaled by the backlog (queue
            // plus in-flight, relative to capacity) and grown by the
            // consecutive-shed streak, so sustained overload pushes
            // clients progressively further out instead of inviting
            // them all back at a fixed cadence.
            const std::size_t backlog = queue_.size() + in_flight_;
            const std::uint64_t scaled =
                static_cast<std::uint64_t>(config_.retry_after_ms) *
                (backlog + shed_streak_) /
                std::max<std::size_t>(std::size_t{1},
                                      config_.queue_capacity);
            hint_ms = static_cast<std::uint32_t>(std::min<std::uint64_t>(
                config_.retry_after_cap_ms,
                std::max<std::uint64_t>(config_.retry_after_ms,
                                        scaled)));
            ++shed_streak_;
        }
    }
    if (admitted) {
        queue_cv_.notify_one();
    } else {
        // Bounded admission: shed with an explicit hint instead of
        // queueing unboundedly.
        sendError(*conn, request_id, ErrorCode::RetryAfter, hint_ms,
                  "admission queue is full");
    }
    return true;
}

void
CampaignServer::executorLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock, [this] {
                return stopping_.load(std::memory_order_relaxed) ||
                       !queue_.empty();
            });
            if (queue_.empty()) {
                if (stopping_.load(std::memory_order_relaxed)) {
                    return;
                }
                continue;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        process(job);
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            --in_flight_;
        }
        idle_cv_.notify_all();
    }
}

void
CampaignServer::process(const Job &job)
{
    const Request &request = job.request;
    util::setThreadLogContext("req " +
                              std::to_string(request.request_id));
    const std::uint32_t deadline_ms =
        request.deadline_ms == 0
            ? config_.default_deadline_ms
            : std::min(request.deadline_ms, config_.max_deadline_ms);
    const Clock::time_point deadline =
        job.arrival + std::chrono::milliseconds(deadline_ms);
    Conn &conn = *job.conn;

    if (Clock::now() >= deadline) {
        // It aged out while queued; don't burn an executor on it.
        sendError(conn, request.request_id,
                  ErrorCode::DeadlineExceeded, 0,
                  "deadline expired while queued");
        util::setThreadLogContext("");
        return;
    }

    RequestObserver observer(*this, conn, request, deadline);
    std::vector<core::RouteGroup> groups;
    groups.reserve(request.groups.size());
    for (const WireRouteGroup &group : request.groups) {
        groups.push_back(core::RouteGroup{
            group.target_ps, static_cast<int>(group.count)});
    }

    try {
        switch (request.kind) {
          case RequestKind::Ping:
            sendFrame(conn, FrameType::Result,
                      encodePingResult(request.request_id));
            break;
          case RequestKind::Experiment1: {
            core::Experiment1Config config;
            config.groups = groups;
            config.burn_hours = request.burn_hours;
            config.recovery_hours = request.recovery_hours;
            config.measure_every_h = request.measure_every_h;
            config.device = core::zcu102New(request.seed);
            config.seed = request.seed;
            config.pool = pool_.get();
            config.observer = &observer;
            sendFrame(conn, FrameType::Result,
                      encodeExperimentResult(
                          request.request_id, request.kind,
                          core::runExperiment1(config)));
            break;
          }
          case RequestKind::Experiment2: {
            core::Experiment2Config config;
            config.groups = groups;
            config.burn_hours = request.burn_hours;
            config.measure_every_h = request.measure_every_h;
            config.platform = core::awsF1Region(request.seed);
            config.seed = request.seed;
            config.pool = pool_.get();
            config.observer = &observer;
            sendFrame(conn, FrameType::Result,
                      encodeExperimentResult(
                          request.request_id, request.kind,
                          core::runExperiment2(config)));
            break;
          }
          case RequestKind::Experiment3: {
            core::Experiment3Config config;
            config.groups = groups;
            config.burn_hours = request.burn_hours;
            config.recovery_hours = request.recovery_hours;
            config.measure_every_h = request.measure_every_h;
            config.attacker_wait_h = request.attacker_wait_h;
            config.park_value = request.park_value;
            config.platform = core::awsF1Region(request.seed);
            config.seed = request.seed;
            config.pool = pool_.get();
            config.observer = &observer;
            sendFrame(conn, FrameType::Result,
                      encodeExperimentResult(
                          request.request_id, request.kind,
                          core::runExperiment3(config)));
            break;
          }
          case RequestKind::TenancyChurn: {
            core::TenancyChurnConfig config;
            config.tenancies = request.tenancies;
            config.routes_per_tenant = request.routes_per_tenant;
            config.dsp_count = static_cast<int>(request.dsp_count);
            config.burn_hours_min = request.burn_hours_min;
            config.burn_hours_max = request.burn_hours_max;
            config.idle_hours = request.idle_hours;
            config.midflip = request.midflip;
            config.observe_last = request.observe_last;
            config.seed = request.seed;
            config.observer = &observer;
            sendFrame(conn, FrameType::Result,
                      encodeChurnResult(request.request_id,
                                        core::runTenancyChurn(config)));
            break;
          }
          case RequestKind::FleetScan: {
            FleetScanConfig config;
            config.fleet = request.fleet;
            config.days = static_cast<int>(request.days);
            config.seed = request.seed;
            config.routes_per_tenant = request.scan_routes_per_tenant;
            config.max_measured = request.max_measured;
            config.checkpoint_every_days = static_cast<int>(
                request.checkpoint_every_days);
            config.checkpoint_path =
                campaignCheckpointPath(request.request_id);
            config.throttle_ms_per_day = request.throttle_ms_per_day;
            config.golden_compat = request.goldenCampaign();
            config.shard_index = request.shard_index;
            config.shard_count = request.shard_count;
            config.pool = pool_.get();
            config.observer = &observer;
            const util::Expected<FleetScanResult> result =
                runFleetScan(config);
            if (!result.ok()) {
                sendError(conn, request.request_id,
                          ErrorCode::InvalidArgument, 0,
                          result.error());
            } else {
                sendFrame(conn, FrameType::Result,
                          encodeFleetScanResult(request.request_id,
                                                result.value()));
            }
            break;
          }
        }
    } catch (const util::CancelledError &) {
        switch (observer.why()) {
          case RequestObserver::Why::Deadline:
            sendError(conn, request.request_id,
                      ErrorCode::DeadlineExceeded, 0,
                      "deadline exceeded mid-run");
            break;
          case RequestObserver::Why::Draining:
            sendError(conn, request.request_id,
                      ErrorCode::ShuttingDown, 0,
                      "server draining; campaign checkpointed — "
                      "resubmit to resume");
            break;
          case RequestObserver::Why::Disconnected:
          case RequestObserver::Why::None:
            break; // nobody is listening
        }
    } catch (const std::exception &error) {
        // The request path never aborts: simulator-level failures
        // (DRC, invariants) come back as a typed INTERNAL error.
        sendError(conn, request.request_id, ErrorCode::Internal, 0,
                  error.what());
    }
    util::setThreadLogContext("");
}

bool
CampaignServer::sendFrame(Conn &conn, FrameType type,
                          const std::vector<std::uint8_t> &payload)
{
    if (util::fault::shouldFail("server.send.reset")) {
        conn.peer_gone.store(true, std::memory_order_relaxed);
        ::shutdown(conn.fd, SHUT_RDWR);
        return false;
    }
    const std::vector<std::uint8_t> frame = encodeFrame(type, payload);
    std::lock_guard<std::mutex> lock(conn.write_mutex);
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n =
            ::send(conn.fd, frame.data() + sent, frame.size() - sent,
                   MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) {
                continue;
            }
            conn.peer_gone.store(true, std::memory_order_relaxed);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

void
CampaignServer::sendError(Conn &conn, std::uint64_t request_id,
                          ErrorCode code,
                          std::uint32_t retry_after_ms,
                          const std::string &message)
{
    sendFrame(conn, FrameType::Error,
              encodeError(request_id, code, retry_after_ms, message));
}

std::string
CampaignServer::campaignCheckpointPath(std::uint64_t request_id) const
{
    if (config_.checkpoint_dir.empty()) {
        return {};
    }
    char name[64];
    std::snprintf(name, sizeof(name), "campaign_%016llx.ckpt",
                  static_cast<unsigned long long>(request_id));
    return config_.checkpoint_dir + "/" + name;
}

} // namespace pentimento::serve
