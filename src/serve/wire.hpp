/**
 * @file
 * Little-endian wire codec for the campaign-server protocol.
 *
 * Every byte that crosses the service boundary is hostile, so the
 * reader mirrors util::SnapshotReader's sticky-error discipline: the
 * first malformed field poisons the reader, every later read returns
 * zero values, and the caller checks ok() exactly once — no partial
 * decode can ever be observed, and no decode path aborts. The writer
 * is the same primitive set in reverse; doubles are bit-cast rather
 * than formatted so a response is a pure byte function of its value,
 * which is what makes "bit-identical response" a testable contract.
 */

#ifndef PENTIMENTO_SERVE_WIRE_HPP
#define PENTIMENTO_SERVE_WIRE_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pentimento::serve {

/** Append-only little-endian encoder. */
class WireWriter
{
  public:
    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /** Bit-cast, never formatted: responses are byte-deterministic. */
    void f64(double v);
    /** u32 length prefix + raw bytes. */
    void str(std::string_view v);

    const std::vector<std::uint8_t> &bytes() const { return out_; }
    std::vector<std::uint8_t> take() { return std::move(out_); }

  private:
    std::vector<std::uint8_t> out_;
};

/**
 * Sticky-error little-endian decoder over a borrowed byte range.
 * The range must outlive the reader (frames own their payloads).
 */
class WireReader
{
  public:
    WireReader(const std::uint8_t *data, std::size_t len)
        : data_(data), len_(len)
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    /**
     * Length-prefixed string, capped at the remaining payload (a
     * declared length past the end is the classic truncation attack).
     */
    std::string str();

    /** Unconsumed bytes. */
    std::size_t remaining() const { return len_ - cursor_; }
    /** True when the payload is fully consumed (strict decoders
     *  require this: trailing bytes are malformed, not slack). */
    bool atEnd() const { return cursor_ == len_; }

    /** Record a (first) error; later reads return zeroes. */
    void fail(std::string message);
    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }

  private:
    bool take(void *dst, std::size_t n);

    const std::uint8_t *data_ = nullptr;
    std::size_t len_ = 0;
    std::size_t cursor_ = 0;
    std::string error_;
};

} // namespace pentimento::serve

#endif // PENTIMENTO_SERVE_WIRE_HPP
