/**
 * @file
 * Checkpointed fleet-scan campaign engine for the campaign server.
 *
 * This is the library form of bench/fleet_campaign's workload: a
 * marketplace region runs `days` simulated days of interleaved
 * tenancies, then a TM2 attacker flash-acquires the most recently
 * released boards and runs the park-and-watch recovery attack against
 * whatever the last tenant left behind.
 *
 * The engine adds the two properties the server needs:
 *
 *  - **Cancellable**: an optional core::SweepObserver fires once per
 *    simulated day; returning false checkpoints (when configured) and
 *    unwinds with util::CancelledError. Deadlines, disconnects and
 *    SIGTERM drain all ride this one hook.
 *  - **Resumable**: with a checkpoint path configured the campaign
 *    writes a rotating two-generation util/snapshot every
 *    `checkpoint_every_days`, and on entry silently resumes from the
 *    latest good generation *if* it matches this config — so a server
 *    killed mid-campaign re-delivers the identical result when the
 *    identical request is resubmitted after restart. A missing,
 *    corrupt or mismatched checkpoint just means a fresh run.
 *
 * The result is a pure function of (fleet, days, seed,
 * routes_per_tenant, max_measured): checkpoint/resume history, the
 * day throttle and the worker count never change a byte of it.
 */

#ifndef PENTIMENTO_SERVE_CAMPAIGN_HPP
#define PENTIMENTO_SERVE_CAMPAIGN_HPP

#include <cstdint>
#include <string>

#include "cloud/platform.hpp"
#include "core/experiment.hpp"
#include "serve/protocol.hpp"
#include "util/expected.hpp"
#include "util/parallel.hpp"

namespace pentimento::serve {

/** How runFleetScan treats an existing checkpoint on entry. */
enum class ResumeMode
{
    /** Resume when a good matching generation exists; else fresh. */
    Auto,
    /** Ignore any existing checkpoint; always start fresh. */
    Never,
    /** Resume or fail: both generations bad is a hard error. */
    Require,
};

/** Fleet-scan campaign configuration. */
struct FleetScanConfig
{
    std::size_t fleet = 112;
    int days = 365;
    std::uint64_t seed = 90902;
    std::size_t routes_per_tenant = 8;
    /** Boards the TM2 attacker measures at the end. */
    std::size_t max_measured = 8;
    /** Checkpoint cadence in simulated days (0 = never). */
    int checkpoint_every_days = 0;
    /** Rotating checkpoint path ("" = no checkpointing/resume). */
    std::string checkpoint_path;
    /** Testing aid: wall-clock sleep per simulated day, ms. */
    std::uint32_t throttle_ms_per_day = 0;
    ResumeMode resume = ResumeMode::Auto;
    /**
     * Reproduce bench/fleet_campaign's exact draw sequence (its fixed
     * driver rng and "tenant_" design naming) so results line up
     * byte-for-byte with the committed golden CSV.
     */
    bool golden_compat = false;
    /** Daily burn rotations + exact deferred-coverage check. */
    bool journal_stress = false;
    /**
     * Run the BRAM content-remanence channel alongside the aging
     * channel: each tenancy writes one word per route into the
     * board's fixed BRAM blocks, a fraction of tenancies end in
     * unclean teardowns (off-power hours accrue against retention,
     * and any ZeroOnRelease scrub is bypassed), and the TM2 attacker
     * reads the blocks back *before* its first configuration — a
     * reconfiguration zeroes contents, so the readout must be the
     * attacker's first act on the board. All BRAM draws come from
     * fresh pure streams split off the campaign seed, so enabling
     * the channel never moves a single interconnect draw: the
     * aging-channel scores (and the committed golden CSV) are
     * byte-identical with the channel on or off.
     */
    bool bram_channel = false;
    /** Provider BRAM scrub policy (priced by ablation_bram_scrub). */
    cloud::BramScrubPolicy bram_scrub = cloud::BramScrubPolicy::None;
    /** Checkpoint and return after this completed day (0 = run out). */
    int halt_at_day = 0;
    /**
     * Board-range shard of the TM2 scan phase. The simulation phase
     * (cheap) runs identically everywhere; only targets
     * [shard_index·per, (shard_index+1)·per) of the deterministic
     * scan-target list are attacked, with every other attack replaced
     * by the exact time advance it would have caused. Concatenating
     * shard results in shard order is byte-identical to an unsharded
     * run. shard_count == 0 means unsharded.
     */
    std::uint32_t shard_index = 0;
    std::uint32_t shard_count = 0;
    /** Scan-phase work pool (nullptr = serial). */
    util::ThreadPool *pool = nullptr;
    /**
     * Fires once per completed simulated day with (day, hours,
     * nullptr, 0); returning false checkpoints and cancels.
     */
    core::SweepObserver *observer = nullptr;
};

/**
 * Run (or resume) a fleet-scan campaign.
 *
 * Throws util::CancelledError when the observer cancels (after
 * writing a final checkpoint, when a path is configured); returns an
 * error for invalid configuration. Checkpoint write failures are
 * reported via util::warn and never fail the campaign.
 */
util::Expected<FleetScanResult> runFleetScan(
    const FleetScanConfig &config);

} // namespace pentimento::serve

#endif // PENTIMENTO_SERVE_CAMPAIGN_HPP
