#include "serve/client.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/fault.hpp"
#include "util/rng.hpp"

namespace pentimento::serve {

std::uint32_t
retryDelayMs(const ClientConfig &config, std::uint32_t attempt,
             std::uint32_t server_hint_ms)
{
    const std::uint64_t backoff = std::min<std::uint64_t>(
        config.backoff_cap_ms,
        static_cast<std::uint64_t>(config.backoff_base_ms)
            << std::min<std::uint32_t>(attempt, 20));
    const std::uint64_t delay =
        std::max<std::uint64_t>(server_hint_ms, backoff);
    // Fresh stream per (seed, attempt): the delay depends on nothing
    // but its arguments, so reconnects and interleavings can't shift
    // the jitter sequence.
    util::Rng jitter = util::Rng(config.jitter_seed)
                           .split("client_retry_" +
                                  std::to_string(attempt));
    return static_cast<std::uint32_t>(
        delay - delay / 2 + jitter.uniformInt(0, delay / 2));
}

ClientConnection::~ClientConnection()
{
    close();
}

ClientConnection::ClientConnection(ClientConnection &&other) noexcept
    : fd_(other.fd_), decoder_(std::move(other.decoder_))
{
    other.fd_ = -1;
}

ClientConnection &
ClientConnection::operator=(ClientConnection &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        decoder_ = std::move(other.decoder_);
        other.fd_ = -1;
    }
    return *this;
}

util::Expected<void>
ClientConnection::connect(std::uint16_t port)
{
    close();
    // CLOEXEC: the shard supervisor forks workers while client
    // connections are live; their fds must not leak into children.
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
        return util::unexpected(std::string("socket: ") +
                                std::strerror(errno));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        const std::string error = std::strerror(errno);
        close();
        return util::unexpected("connect: " + error);
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    decoder_ = FrameDecoder(1u << 24);
    return {};
}

util::Expected<void>
ClientConnection::sendRaw(const void *data, std::size_t len)
{
    if (fd_ < 0) {
        return util::unexpected("sendRaw: not connected");
    }
    if (util::fault::shouldFail("client.send.reset")) {
        close();
        return util::unexpected("send: Connection reset by peer (injected)");
    }
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    if (len > 1 && util::fault::shouldFail("client.send.short")) {
        // Push half the frame so the server sees a truncated request,
        // then die the way a mid-write crash would.
        std::size_t half_sent = 0;
        while (half_sent < len / 2) {
            const ssize_t n = ::send(fd_, bytes + half_sent,
                                     len / 2 - half_sent, MSG_NOSIGNAL);
            if (n <= 0) {
                break;
            }
            half_sent += static_cast<std::size_t>(n);
        }
        close();
        return util::unexpected("send: short write (injected)");
    }
    std::size_t sent = 0;
    while (sent < len) {
        const ssize_t n =
            ::send(fd_, bytes + sent, len - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) {
                continue;
            }
            return util::unexpected(std::string("send: ") +
                                    std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
    return {};
}

util::Expected<void>
ClientConnection::sendFrame(FrameType type,
                            const std::vector<std::uint8_t> &payload)
{
    const std::vector<std::uint8_t> frame = encodeFrame(type, payload);
    return sendRaw(frame.data(), frame.size());
}

util::Expected<Frame>
ClientConnection::readFrame(std::uint32_t timeout_ms)
{
    if (fd_ < 0) {
        return util::unexpected("readFrame: not connected");
    }
    if (util::fault::shouldFail("client.recv.stall")) {
        // A stalled peer surfaces as the same timeout the poll loop
        // would produce — just without burning wall clock on it.
        return util::unexpected("readFrame: timed out");
    }
    if (util::fault::shouldFail("client.recv.reset")) {
        close();
        return util::unexpected("recv: Connection reset by peer (injected)");
    }
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    Frame frame;
    for (;;) {
        const FrameDecoder::Status status = decoder_.next(&frame);
        if (status == FrameDecoder::Status::Ready) {
            return frame;
        }
        if (status == FrameDecoder::Status::Corrupt) {
            return util::unexpected("readFrame: " + decoder_.error());
        }
        const auto remaining = deadline - Clock::now();
        if (remaining <= std::chrono::milliseconds(0)) {
            return util::unexpected("readFrame: timed out");
        }
        pollfd pfd{fd_, POLLIN, 0};
        const int rc = ::poll(
            &pfd, 1,
            static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    remaining)
                    .count()) +
                1);
        if (rc < 0) {
            if (errno == EINTR) {
                continue;
            }
            return util::unexpected(std::string("poll: ") +
                                    std::strerror(errno));
        }
        if (rc == 0) {
            return util::unexpected("readFrame: timed out");
        }
        std::uint8_t buf[4096];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n == 0) {
            return util::unexpected("readFrame: connection closed");
        }
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return util::unexpected(std::string("recv: ") +
                                    std::strerror(errno));
        }
        decoder_.feed(buf, static_cast<std::size_t>(n));
    }
}

util::Expected<Frame>
ClientConnection::call(const Request &request,
                       const ClientConfig &config,
                       std::uint32_t timeout_ms,
                       std::uint32_t *retries)
{
    if (retries != nullptr) {
        *retries = 0;
    }
    const std::vector<std::uint8_t> payload = encodeRequest(request);
    for (std::uint32_t attempt = 0;; ++attempt) {
        const util::Expected<void> sent =
            sendFrame(FrameType::Request, payload);
        if (!sent.ok()) {
            return util::unexpected(sent.error());
        }
        for (;;) {
            util::Expected<Frame> frame = readFrame(timeout_ms);
            if (!frame.ok()) {
                return frame;
            }
            if (frame.value().type == FrameType::Sweep) {
                continue;
            }
            if (frame.value().type == FrameType::Error &&
                attempt < config.max_retries) {
                const std::optional<ErrorInfo> info =
                    decodeError(frame.value().payload);
                if (info.has_value() &&
                    info->code == ErrorCode::RetryAfter) {
                    if (retries != nullptr) {
                        *retries = attempt + 1;
                    }
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(retryDelayMs(
                            config, attempt, info->retry_after_ms)));
                    break; // resubmit
                }
            }
            return frame;
        }
    }
}

void
ClientConnection::closeWrite()
{
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_WR);
    }
}

void
ClientConnection::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace pentimento::serve
