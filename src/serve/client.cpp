#include "serve/client.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

namespace pentimento::serve {

ClientConnection::~ClientConnection()
{
    close();
}

ClientConnection::ClientConnection(ClientConnection &&other) noexcept
    : fd_(other.fd_), decoder_(std::move(other.decoder_))
{
    other.fd_ = -1;
}

ClientConnection &
ClientConnection::operator=(ClientConnection &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        decoder_ = std::move(other.decoder_);
        other.fd_ = -1;
    }
    return *this;
}

util::Expected<void>
ClientConnection::connect(std::uint16_t port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        return util::unexpected(std::string("socket: ") +
                                std::strerror(errno));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        const std::string error = std::strerror(errno);
        close();
        return util::unexpected("connect: " + error);
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    decoder_ = FrameDecoder(1u << 24);
    return {};
}

util::Expected<void>
ClientConnection::sendRaw(const void *data, std::size_t len)
{
    if (fd_ < 0) {
        return util::unexpected("sendRaw: not connected");
    }
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::size_t sent = 0;
    while (sent < len) {
        const ssize_t n =
            ::send(fd_, bytes + sent, len - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) {
                continue;
            }
            return util::unexpected(std::string("send: ") +
                                    std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
    return {};
}

util::Expected<void>
ClientConnection::sendFrame(FrameType type,
                            const std::vector<std::uint8_t> &payload)
{
    const std::vector<std::uint8_t> frame = encodeFrame(type, payload);
    return sendRaw(frame.data(), frame.size());
}

util::Expected<Frame>
ClientConnection::readFrame(std::uint32_t timeout_ms)
{
    if (fd_ < 0) {
        return util::unexpected("readFrame: not connected");
    }
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    Frame frame;
    for (;;) {
        const FrameDecoder::Status status = decoder_.next(&frame);
        if (status == FrameDecoder::Status::Ready) {
            return frame;
        }
        if (status == FrameDecoder::Status::Corrupt) {
            return util::unexpected("readFrame: " + decoder_.error());
        }
        const auto remaining = deadline - Clock::now();
        if (remaining <= std::chrono::milliseconds(0)) {
            return util::unexpected("readFrame: timed out");
        }
        pollfd pfd{fd_, POLLIN, 0};
        const int rc = ::poll(
            &pfd, 1,
            static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    remaining)
                    .count()) +
                1);
        if (rc < 0) {
            if (errno == EINTR) {
                continue;
            }
            return util::unexpected(std::string("poll: ") +
                                    std::strerror(errno));
        }
        if (rc == 0) {
            return util::unexpected("readFrame: timed out");
        }
        std::uint8_t buf[4096];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n == 0) {
            return util::unexpected("readFrame: connection closed");
        }
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return util::unexpected(std::string("recv: ") +
                                    std::strerror(errno));
        }
        decoder_.feed(buf, static_cast<std::size_t>(n));
    }
}

void
ClientConnection::closeWrite()
{
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_WR);
    }
}

void
ClientConnection::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace pentimento::serve
