/**
 * @file
 * Deterministic, splittable random number generation.
 *
 * Every stochastic component in the simulator (process variation,
 * metastability, thermal noise, ambient temperature walks) draws from
 * an Rng seeded from a single experiment seed, so complete experiments
 * are reproducible bit-for-bit. Rng::split() derives independent child
 * streams so that adding a consumer does not perturb the draws seen by
 * existing consumers.
 */

#ifndef PENTIMENTO_UTIL_RNG_HPP
#define PENTIMENTO_UTIL_RNG_HPP

#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>

namespace pentimento::util {

/**
 * xoshiro256** pseudo-random generator with splitmix64 seeding.
 *
 * Chosen over std::mt19937_64 for speed (the aging loop draws billions
 * of variates in long sweeps) and for a compact, copyable state that
 * makes snapshotting experiments trivial.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            word = splitmix64(x);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** Next raw 64-bit draw. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] (inclusive). */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        const std::uint64_t span = hi - lo + 1;
        return lo + (span == 0 ? (*this)() : (*this)() % span);
    }

    /** Standard normal variate (Marsaglia polar method). */
    double
    gaussian()
    {
        if (have_cached_) {
            have_cached_ = false;
            return cached_;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double m = std::sqrt(-2.0 * std::log(s) / s);
        cached_ = v * m;
        have_cached_ = true;
        return u * m;
    }

    /** Normal variate with the given mean and standard deviation. */
    double
    gaussian(double mean, double sd)
    {
        return mean + sd * gaussian();
    }

    /** Lognormal variate parameterised by the underlying normal. */
    double
    lognormal(double mu, double sigma)
    {
        return std::exp(gaussian(mu, sigma));
    }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /**
     * Derive an independent child stream.
     *
     * The child is seeded from a fresh draw mixed with a caller tag so
     * that identically-ordered splits with different tags diverge.
     */
    Rng
    split(std::uint64_t tag = 0)
    {
        std::uint64_t s = (*this)() ^ (tag * 0xbf58476d1ce4e5b9ULL);
        return Rng(splitmix64(s));
    }

    /** Derive a child stream from a string tag (e.g. component name). */
    Rng
    split(std::string_view tag)
    {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (const char c : tag) {
            h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
        }
        return split(h);
    }

  private:
    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
    double cached_ = 0.0;
    bool have_cached_ = false;
};

} // namespace pentimento::util

#endif // PENTIMENTO_UTIL_RNG_HPP
