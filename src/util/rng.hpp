/**
 * @file
 * Deterministic, splittable random number generation.
 *
 * Every stochastic component in the simulator (process variation,
 * metastability, thermal noise, ambient temperature walks) draws from
 * an Rng seeded from a single experiment seed, so complete experiments
 * are reproducible bit-for-bit. Rng::split() derives independent child
 * streams so that adding a consumer does not perturb the draws seen by
 * existing consumers.
 */

#ifndef PENTIMENTO_UTIL_RNG_HPP
#define PENTIMENTO_UTIL_RNG_HPP

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>

#include "util/logging.hpp"

namespace pentimento::util {

/**
 * xoshiro256** pseudo-random generator with splitmix64 seeding.
 *
 * Chosen over std::mt19937_64 for speed (the aging loop draws billions
 * of variates in long sweeps) and for a compact, copyable state that
 * makes snapshotting experiments trivial.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            word = splitmix64(x);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** Next raw 64-bit draw. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] (inclusive). lo > hi is a caller
     *  bug and fatals. NOTE: an unsigned `size() - 1` underflow from
     *  an empty container produces (0, UINT64_MAX) — which is the
     *  *legitimate* full-range request, so it cannot be trapped here.
     *  Use uniformIndex() to pick from a container. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        if (lo > hi) {
            fatal("Rng::uniformInt: empty range (lo > hi)");
        }
        const std::uint64_t span = hi - lo + 1;
        return lo + (span == 0 ? (*this)() : (*this)() % span);
    }

    /**
     * Uniform index in [0, count). Fatals on count == 0 — the guard
     * uniformInt(0, size() - 1) cannot provide, because the empty
     * container's size()-1 wraps to exactly the legitimate full-range
     * request. Draw-compatible with uniformInt(0, count - 1): call
     * sites switching over keep their sequences bit-identical.
     */
    std::uint64_t
    uniformIndex(std::uint64_t count)
    {
        if (count == 0) {
            fatal("Rng::uniformIndex: empty range");
        }
        return (*this)() % count;
    }

    /** Standard normal variate (Marsaglia polar method). */
    double
    gaussian()
    {
        if (have_cached_) {
            have_cached_ = false;
            return cached_;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double m = std::sqrt(-2.0 * std::log(s) / s);
        cached_ = v * m;
        have_cached_ = true;
        return u * m;
    }

    /** Normal variate with the given mean and standard deviation. */
    double
    gaussian(double mean, double sd)
    {
        return mean + sd * gaussian();
    }

    /**
     * Fill out[0..n) with normal variates, bit-identical to n
     * sequential gaussian(mean, sd) calls — including the polar
     * method's cached second variate, which is honoured on entry and
     * re-cached on exit when n is odd. Batching lets hot loops (TDC
     * jitter per trace) hoist the per-call branch without perturbing
     * any draw sequence.
     */
    void
    gaussianBlock(double mean, double sd, double *out, std::size_t n)
    {
        std::size_t i = 0;
        if (have_cached_ && i < n) {
            have_cached_ = false;
            out[i++] = mean + sd * cached_;
        }
        while (i < n) {
            double u, v, s;
            do {
                u = uniform(-1.0, 1.0);
                v = uniform(-1.0, 1.0);
                s = u * u + v * v;
            } while (s >= 1.0 || s == 0.0);
            const double m = std::sqrt(-2.0 * std::log(s) / s);
            out[i++] = mean + sd * (u * m);
            if (i < n) {
                out[i++] = mean + sd * (v * m);
            } else {
                cached_ = v * m;
                have_cached_ = true;
            }
        }
    }

    /**
     * Standard normal variate via a 256-layer Marsaglia-Tsang
     * ziggurat: ~1 raw draw and zero transcendental calls for ~99% of
     * variates, vs ~2.5 draws plus sqrt+log for the polar method.
     *
     * NOT draw-compatible with gaussian(): it consumes the underlying
     * stream in a different order, so it is reserved for opt-in fast
     * paths (TdcConfig::fast_sampling) that deliberately re-roll their
     * sample paths. Does not touch the polar method's cached variate.
     */
    double
    gaussianFast()
    {
        return gaussianFastFrom(zigguratTables());
    }

    /** Block of ziggurat normals with given mean and deviation. */
    void
    gaussianFastBlock(double mean, double sd, double *out, std::size_t n)
    {
        // Resolve the magic-static guard once for the whole block
        // instead of per variate — the tight trace loops draw tens of
        // samples per call.
        const ZigguratTables &z = zigguratTables();
        for (std::size_t i = 0; i < n; ++i) {
            out[i] = mean + sd * gaussianFastFrom(z);
        }
    }

  private:
    struct ZigguratTables;

    /** Ziggurat sampling loop against an already-resolved table. */
    double
    gaussianFastFrom(const ZigguratTables &z)
    {
        while (true) {
            const std::uint64_t bits = (*this)();
            // Bit-disjoint fields of one draw: 53-bit magnitude
            // (bits 11-63), layer index (bits 0-7), sign (bit 8).
            const std::uint64_t j = bits >> 11;
            const unsigned idx = static_cast<unsigned>(bits & 255u);
            const double sign = (bits & 256u) != 0 ? -1.0 : 1.0;
            if (j < z.kn[idx]) {
                // Fully inside the layer: accept with no float test.
                return sign * (static_cast<double>(j) * z.wn[idx]);
            }
            if (idx == 0) {
                // Tail beyond r: Marsaglia's exponential wedge. The
                // 1 - uniform() keeps log()'s argument in (0, 1].
                double x, y;
                do {
                    x = -std::log(1.0 - uniform()) * z.inv_r;
                    y = -std::log(1.0 - uniform());
                } while (y + y < x * x);
                return sign * (z.r + x);
            }
            const double x = static_cast<double>(j) * z.wn[idx];
            if (z.fn[idx] +
                    uniform() * (z.fn[idx - 1] - z.fn[idx]) <
                std::exp(-0.5 * x * x)) {
                return sign * x;
            }
        }
    }

  public:
    /** Lognormal variate parameterised by the underlying normal. */
    double
    lognormal(double mu, double sigma)
    {
        return std::exp(gaussian(mu, sigma));
    }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /**
     * Derive an independent child stream.
     *
     * The child is seeded from a fresh draw mixed with a caller tag so
     * that identically-ordered splits with different tags diverge.
     */
    Rng
    split(std::uint64_t tag = 0)
    {
        std::uint64_t s = (*this)() ^ (tag * 0xbf58476d1ce4e5b9ULL);
        return Rng(splitmix64(s));
    }

    /** Derive a child stream from a string tag (e.g. component name). */
    Rng
    split(std::string_view tag)
    {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (const char c : tag) {
            h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
        }
        return split(h);
    }

    /**
     * Complete serializable stream cursor. The polar-method cache is
     * part of the cursor: dropping it would desynchronise every
     * odd-count gaussian consumer after a snapshot restore.
     */
    struct State
    {
        std::uint64_t words[4];
        double cached;
        bool have_cached;
    };

    /** Capture the stream cursor for checkpointing. */
    State
    state() const
    {
        return State{{state_[0], state_[1], state_[2], state_[3]},
                     cached_, have_cached_};
    }

    /** Restore a stream cursor captured by state(). */
    void
    setState(const State &s)
    {
        for (int i = 0; i < 4; ++i) {
            state_[i] = s.words[i];
        }
        cached_ = s.cached;
        have_cached_ = s.have_cached;
    }

  private:
    /**
     * Precomputed ziggurat layers for the standard normal. kn[i] is
     * the largest 53-bit magnitude certainly inside layer i, wn[i]
     * scales a 53-bit magnitude to an abscissa, fn[i] is the density
     * at the layer boundary. Built once (thread-safe magic static)
     * with the classic Marsaglia-Tsang recurrence for 256 layers.
     */
    struct ZigguratTables
    {
        std::uint64_t kn[256];
        double wn[256];
        double fn[256];
        double r;
        double inv_r;

        ZigguratTables()
        {
            // Rightmost layer abscissa and common layer area for a
            // 256-layer normal ziggurat.
            const double m = 0x1.0p53;
            double dn = 3.6541528853610088;
            double tn = dn;
            const double vn = 0.00492867323399;
            r = dn;
            inv_r = 1.0 / dn;
            const double q = vn / std::exp(-0.5 * dn * dn);
            kn[0] = static_cast<std::uint64_t>((dn / q) * m);
            kn[1] = 0;
            wn[0] = q / m;
            wn[255] = dn / m;
            fn[0] = 1.0;
            fn[255] = std::exp(-0.5 * dn * dn);
            for (int i = 254; i >= 1; --i) {
                dn = std::sqrt(-2.0 * std::log(vn / dn +
                                               std::exp(-0.5 * dn * dn)));
                kn[i + 1] = static_cast<std::uint64_t>((dn / tn) * m);
                tn = dn;
                fn[i] = std::exp(-0.5 * dn * dn);
                wn[i] = dn / m;
            }
        }
    };

    static const ZigguratTables &
    zigguratTables()
    {
        static const ZigguratTables tables;
        return tables;
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
    double cached_ = 0.0;
    bool have_cached_ = false;
};

} // namespace pentimento::util

#endif // PENTIMENTO_UTIL_RNG_HPP
