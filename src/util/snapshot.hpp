/**
 * @file
 * Versioned, checksummed binary snapshot format for board state.
 *
 * Layout: an 16-byte header (magic "PNTMSNP\x01", format version,
 * reserved flags) followed by a flat sequence of chunks. Each chunk is
 *
 *     u32 tag | u32 seq | u64 payload_len | payload | u32 crc32c
 *
 * where the CRC covers tag+seq+len+payload, and seq is the 0-based
 * ordinal of the chunk in the file — a duplicated, dropped, or
 * reordered chunk breaks the sequence even when its own CRC is intact.
 * The file ends with a mandatory "END!" chunk whose payload is the
 * count of preceding chunks; trailing garbage after it is rejected.
 *
 * Writing is atomic: the whole image is built in memory, written to
 * `<path>.tmp`, fsync'd, then renamed over `<path>`. commitRotating()
 * additionally keeps the previous good generation at `<path>.prev`, so
 * a crash at any instant leaves at least one loadable checkpoint.
 *
 * Reading is abort-free: SnapshotReader carries a sticky error (like
 * std::istream) — the first malformed field poisons the reader, every
 * later read returns zero values, and the caller checks ok() once at
 * the end. Top-level entry points return util::Expected rather than
 * calling util::fatal, so a corrupt checkpoint is a recoverable event.
 */

#ifndef PENTIMENTO_UTIL_SNAPSHOT_HPP
#define PENTIMENTO_UTIL_SNAPSHOT_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.hpp"

namespace pentimento::util {

/** Format version written to and required from every snapshot. */
inline constexpr std::uint32_t kSnapshotVersion = 1;

/** Pack a 4-char chunk tag ("BRD!") into its on-disk u32. */
constexpr std::uint32_t
snapshotTag(char a, char b, char c, char d)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

/** CRC32C (Castagnoli) of a byte range, chainable via seed. */
std::uint32_t crc32c(const void *data, std::size_t len,
                     std::uint32_t seed = 0);

/**
 * Builds a snapshot image in memory and commits it atomically.
 *
 * Usage: beginChunk(tag), write primitives, endChunk(), repeat; then
 * either commit()/commitRotating() to persist, or finish() to get the
 * complete image for in-memory round trips (tests, microbenches).
 */
class SnapshotWriter
{
  public:
    SnapshotWriter();

    /** Open a chunk; primitives written next land in its payload. */
    void beginChunk(std::uint32_t tag);
    /** Close the open chunk: patch its length, append its CRC. */
    void endChunk();

    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /** Doubles are bit-cast, never formatted: restore is bit-exact. */
    void f64(double v);
    /** Length-prefixed byte string. */
    void str(std::string_view v);

    /**
     * Append the terminal END chunk and return the finished image.
     * The writer is spent afterwards.
     */
    const std::vector<std::uint8_t> &finish();

    /**
     * finish() + atomic persist: write `<path>.tmp`, flush + fsync,
     * rename over `<path>`. Any OS-level failure is returned, not
     * thrown.
     */
    Expected<void> commit(const std::string &path);

    /**
     * Like commit(), but first rotates an existing `<path>` to
     * `<path>.prev` so the previous good generation survives a corrupt
     * or torn write of the new one.
     */
    Expected<void> commitRotating(const std::string &path);

  private:
    std::vector<std::uint8_t> out_;
    std::size_t chunk_start_ = 0; // offset of open chunk's tag; 0 = closed
    std::uint32_t chunk_count_ = 0;
    bool finished_ = false;
};

/**
 * Parses a snapshot image with sticky-error semantics.
 *
 * enterChunk(tag) validates the next chunk's header, CRC, and
 * sequence number; primitives then consume its payload; leaveChunk()
 * requires the payload to be fully consumed (a length drift inside a
 * chunk is structural corruption, not slack). After any failure all
 * reads return zeroes and fail() records only the first error.
 */
class SnapshotReader
{
  public:
    /** Wrap an in-memory image (no validation beyond the header). */
    static Expected<SnapshotReader> fromBuffer(
        std::vector<std::uint8_t> image);

    /** Load `path` fully into memory and validate the header. */
    static Expected<SnapshotReader> open(const std::string &path);

    /**
     * Load `path`, falling back to `<path>.prev` when the primary is
     * missing or structurally corrupt. Unlike open(), every chunk is
     * CRC-walked up front — one cheap pass over the in-memory image —
     * so a torn or bit-rotten generation is rejected *here*, before a
     * caller commits to restoring from it, instead of surfacing as a
     * read error halfway through the restore. Returns which file was
     * opened via `used_fallback`.
     */
    static Expected<SnapshotReader> openWithFallback(
        const std::string &path, bool *used_fallback = nullptr);

    /** Enter the next chunk, which must carry `tag`. */
    bool enterChunk(std::uint32_t tag);
    /** Leave the current chunk; fails unless fully consumed. */
    bool leaveChunk();
    /** Validate the terminal END chunk and absence of trailing bytes. */
    bool expectEnd();

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    /** Record a (first) error; subsequent reads return zeroes. */
    void fail(std::string message);
    /** True until the first structural or checksum error. */
    bool ok() const { return error_.empty(); }
    /** First recorded error message ("" when ok). */
    const std::string &error() const { return error_; }

    /** Convert reader state into an Expected for top-level callers. */
    Expected<void>
    status() const
    {
        if (!ok()) {
            return unexpected(error_);
        }
        return {};
    }

  private:
    SnapshotReader() = default;

    bool take(void *dst, std::size_t len);

    std::vector<std::uint8_t> image_;
    std::size_t cursor_ = 0;      // next unread byte in image_
    std::size_t payload_end_ = 0; // end of current chunk payload; 0 = none
    std::size_t chunk_end_ = 0;   // end incl. trailing CRC
    std::uint32_t next_seq_ = 0;
    bool in_chunk_ = false;
    std::string error_;
};

} // namespace pentimento::util

#endif // PENTIMENTO_UTIL_SNAPSHOT_HPP
