/**
 * @file
 * Tiny CSV writer.
 *
 * Benches optionally dump the raw series behind each figure so the
 * plots can be regenerated with external tooling.
 */

#ifndef PENTIMENTO_UTIL_CSV_HPP
#define PENTIMENTO_UTIL_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

namespace pentimento::util {

/**
 * Streams rows to a CSV file; cells are escaped when needed.
 */
class CsvWriter
{
  public:
    /**
     * Open the target file for writing.
     * @throws FatalError when the file cannot be opened
     */
    explicit CsvWriter(const std::string &path);

    /** Write one row of string cells. */
    void writeRow(const std::vector<std::string> &cells);

    /** Write one row of numeric cells. */
    void writeRow(const std::vector<double> &cells);

    /** Flush and close the file (also done by the destructor). */
    void close();

  private:
    static std::string escape(const std::string &cell);

    std::ofstream out_;
};

} // namespace pentimento::util

#endif // PENTIMENTO_UTIL_CSV_HPP
