/**
 * @file
 * Work-stealing thread pool and deterministic parallel primitives.
 *
 * Route-scale campaigns (ablation grids, measurement sweeps over
 * thousands of routes, route-group fan-out) are embarrassingly
 * parallel, but the simulator's contract is bit-for-bit
 * reproducibility from a single seed. The primitives here keep that
 * contract:
 *
 *  - every parallel unit draws from an Rng stream pre-split *serially*
 *    from the parent seed (Rng::split), so the draw sequence seen by
 *    unit i never depends on scheduling;
 *  - results land in index-order slots, so output ordering never
 *    depends on completion order;
 *  - therefore the same seed produces identical output for 1 worker,
 *    N workers, or the serial fallback.
 *
 * The pool itself is a classic work-stealing design: one deque per
 * worker, LIFO at the owner's end for cache locality, FIFO steals
 * from victims when a worker runs dry. parallelFor callers
 * participate in execution, so nested parallel sections and
 * zero-worker pools degrade to serial execution instead of
 * deadlocking.
 */

#ifndef PENTIMENTO_UTIL_PARALLEL_HPP
#define PENTIMENTO_UTIL_PARALLEL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/rng.hpp"

namespace pentimento::util {

/**
 * Work-stealing thread pool.
 *
 * `workers` is the number of *extra* threads; parallelFor callers
 * execute work too, so a pool with W workers runs loops at W+1-way
 * parallelism. A pool with zero workers is valid and runs everything
 * inline in the caller — the degenerate case every determinism test
 * compares against.
 */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @param workers extra threads; kAutoWorkers picks from the env. */
    static constexpr std::size_t kAutoWorkers =
        static_cast<std::size_t>(-1);

    explicit ThreadPool(std::size_t workers = kAutoWorkers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of pool-owned threads (not counting callers). */
    std::size_t workerCount() const { return threads_.size(); }

    /** Total lanes a parallelFor fans out to (workers + caller). */
    std::size_t concurrency() const { return threads_.size() + 1; }

    /** Enqueue a fire-and-forget task onto the least-loaded deque. */
    void submit(Task task);

    /**
     * Run body(i) for every i in [begin, end), blocking until all
     * iterations finish. The caller participates. Iterations are
     * claimed in contiguous chunks; any exception is captured and the
     * first one rethrown in the caller after the loop drains (the
     * remaining chunks still run, keeping the pool reusable).
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &body);

    /**
     * parallelFor for a callable that is not already a std::function:
     * the serial path (no workers, or a single iteration) calls the
     * body directly — fully inlinable, no type-erasure dispatch per
     * iteration — and only the pooled fan-out pays the erasure. Same
     * iteration order and semantics as the erased overload.
     */
    template <typename Body,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<Body>, std::function<void(std::size_t)>>>>
    void
    parallelFor(std::size_t begin, std::size_t end, Body &&body)
    {
        if (begin >= end) {
            return;
        }
        if (workerCount() == 0 || end - begin == 1) {
            for (std::size_t i = begin; i < end; ++i) {
                body(i);
            }
            return;
        }
        const std::function<void(std::size_t)> erased(
            std::forward<Body>(body));
        parallelFor(begin, end, erased);
    }

    /**
     * Total lanes requested via PENTIMENTO_WORKERS, if set and valid
     * (>= 1). The single parser of that variable: defaultWorkers()
     * and the bench `--workers` fallback both consume it, so the
     * lanes convention can't drift between library and benches.
     */
    static std::optional<std::size_t> lanesFromEnv();

    /**
     * Default worker count: lanesFromEnv() - 1 when the environment
     * names a lane count (the caller is one lane), otherwise
     * hardware_concurrency() - 1.
     */
    static std::size_t defaultWorkers();

    /** Process-wide shared pool, created on first use. */
    static ThreadPool &shared();

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void workerLoop(std::size_t self);
    bool popLocal(std::size_t self, Task &out);
    bool stealFrom(std::size_t self, Task &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;
    std::mutex wake_mutex_;
    std::condition_variable wake_cv_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::size_t> next_queue_{0};
};

/**
 * Run body(i) for i in [0, n) on a pool (the shared pool when null),
 * preserving the determinism contract described in the file header.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body,
                 ThreadPool *pool = nullptr);

/**
 * Map i in [0, n) to results[i] = fn(i) in parallel. Output order is
 * index order regardless of scheduling.
 */
template <typename T, typename Fn>
std::vector<T>
parallelMap(std::size_t n, Fn &&fn, ThreadPool *pool = nullptr)
{
    std::vector<T> results(n);
    parallelFor(
        n, [&](std::size_t i) { results[i] = fn(i); }, pool);
    return results;
}

/**
 * Serially derive n independent child streams from a parent Rng.
 *
 * Splitting happens on the calling thread *before* any fan-out, so
 * stream i's state is a pure function of (parent state, tag, i) and
 * never of thread count or scheduling. The parent advances by exactly
 * n draws regardless of how the children are later consumed.
 */
std::vector<Rng> splitStreams(Rng &parent, std::size_t n,
                              std::uint64_t tag = 0);

/** Tagged variant so distinct consumers can't collide. */
std::vector<Rng> splitStreams(Rng &parent, std::size_t n,
                              std::string_view tag);

} // namespace pentimento::util

#endif // PENTIMENTO_UTIL_PARALLEL_HPP
