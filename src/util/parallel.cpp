#include "util/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

namespace pentimento::util {

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == kAutoWorkers) {
        workers = defaultWorkers();
    }
    queues_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        queues_.push_back(std::make_unique<WorkerQueue>());
    }
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        threads_.emplace_back([this, i] { workerLoop(i); });
    }
}

ThreadPool::~ThreadPool()
{
    stopping_.store(true, std::memory_order_release);
    wake_cv_.notify_all();
    for (std::thread &thread : threads_) {
        if (thread.joinable()) {
            thread.join();
        }
    }
}

std::optional<std::size_t>
ThreadPool::lanesFromEnv()
{
    if (const char *env = std::getenv("PENTIMENTO_WORKERS")) {
        const long lanes = std::strtol(env, nullptr, 10);
        if (lanes >= 1) {
            return static_cast<std::size_t>(lanes);
        }
    }
    return std::nullopt;
}

std::size_t
ThreadPool::defaultWorkers()
{
    if (const auto lanes = lanesFromEnv()) {
        // The env var names total lanes; the caller is one lane.
        return *lanes - 1;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0;
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::submit(Task task)
{
    if (queues_.empty()) {
        task();
        return;
    }
    const std::size_t slot =
        next_queue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size();
    {
        std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
        queues_[slot]->tasks.push_back(std::move(task));
    }
    wake_cv_.notify_one();
}

bool
ThreadPool::popLocal(std::size_t self, Task &out)
{
    WorkerQueue &queue = *queues_[self];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tasks.empty()) {
        return false;
    }
    // LIFO at the owner's end: the freshest task is the one whose
    // working set is still warm in this core's cache.
    out = std::move(queue.tasks.back());
    queue.tasks.pop_back();
    return true;
}

bool
ThreadPool::stealFrom(std::size_t self, Task &out)
{
    const std::size_t n = queues_.size();
    for (std::size_t hop = 1; hop < n; ++hop) {
        WorkerQueue &victim = *queues_[(self + hop) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            // FIFO from the victim's cold end, the classic
            // work-stealing asymmetry.
            out = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        Task task;
        if (popLocal(self, task) || stealFrom(self, task)) {
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(wake_mutex_);
        if (stopping_.load(std::memory_order_acquire)) {
            // Drain everything still queued before exiting so
            // submitted work is never silently dropped.
            lock.unlock();
            while (popLocal(self, task) || stealFrom(self, task)) {
                task();
            }
            return;
        }
        wake_cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
}

namespace {

/** Shared state of one parallelFor invocation. */
struct LoopState
{
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)> *body = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t chunk_count = 0;
    std::mutex finish_mutex;
    std::condition_variable finish_cv;
    std::mutex error_mutex;
    std::exception_ptr error;

    /** Claim and run chunks until the iteration space is exhausted. */
    void
    drain()
    {
        for (;;) {
            const std::size_t c =
                next.fetch_add(1, std::memory_order_relaxed);
            if (c >= chunk_count) {
                return;
            }
            const std::size_t lo = begin + c * chunk;
            const std::size_t hi = std::min(end, lo + chunk);
            try {
                for (std::size_t i = lo; i < hi; ++i) {
                    (*body)(i);
                }
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error) {
                    error = std::current_exception();
                }
            }
            if (done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                chunk_count) {
                std::lock_guard<std::mutex> lock(finish_mutex);
                finish_cv.notify_all();
            }
        }
    }
};

} // namespace

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &body)
{
    if (begin >= end) {
        return;
    }
    const std::size_t n = end - begin;
    if (workerCount() == 0 || n == 1) {
        for (std::size_t i = begin; i < end; ++i) {
            body(i);
        }
        return;
    }

    // Over-decompose ~4 chunks per lane so stealing can balance
    // heterogeneous iteration costs without per-index task overhead.
    auto state = std::make_shared<LoopState>();
    state->begin = begin;
    state->end = end;
    state->body = &body;
    const std::size_t lanes = concurrency();
    state->chunk = std::max<std::size_t>(1, n / (lanes * 4));
    state->chunk_count =
        (n + state->chunk - 1) / state->chunk;

    const std::size_t helpers =
        std::min(workerCount(), state->chunk_count - 1);
    for (std::size_t w = 0; w < helpers; ++w) {
        submit([state] { state->drain(); });
    }
    // The caller is a full participant: with zero idle workers the
    // loop still completes (and nested parallelFor can't deadlock).
    state->drain();

    std::unique_lock<std::mutex> lock(state->finish_mutex);
    state->finish_cv.wait(lock, [&] {
        return state->done.load(std::memory_order_acquire) ==
               state->chunk_count;
    });
    lock.unlock();
    if (state->error) {
        std::rethrow_exception(state->error);
    }
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body,
            ThreadPool *pool)
{
    ThreadPool &target = pool != nullptr ? *pool : ThreadPool::shared();
    target.parallelFor(0, n, body);
}

std::vector<Rng>
splitStreams(Rng &parent, std::size_t n, std::uint64_t tag)
{
    std::vector<Rng> streams;
    streams.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        streams.push_back(parent.split(tag ^ (0x9e3779b97f4a7c15ULL *
                                              (i + 1))));
    }
    return streams;
}

std::vector<Rng>
splitStreams(Rng &parent, std::size_t n, std::string_view tag)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : tag) {
        h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
    }
    return splitStreams(parent, n, h);
}

} // namespace pentimento::util
