/**
 * @file
 * Minimal status/error reporting in the gem5 spirit.
 *
 * inform() prints status, warn() flags questionable-but-survivable
 * conditions, fatal() aborts on user error (bad configuration), and
 * panic() aborts on internal invariant violations. Verbosity can be
 * silenced globally so tests and benches stay quiet.
 *
 * Emission is thread-safe: verbosity is an atomic, and each line is
 * written under one mutex so concurrent server threads never interleave
 * mid-line. setThreadLogContext() installs a per-thread prefix (e.g.
 * "req 42") that tags every line the thread emits, making interleaved
 * server logs attributable to a request.
 */

#ifndef PENTIMENTO_UTIL_LOGGING_HPP
#define PENTIMENTO_UTIL_LOGGING_HPP

#include <stdexcept>
#include <string>

namespace pentimento::util {

/** Severity used by setVerbosity to filter console output. */
enum class Verbosity
{
    Silent,  ///< nothing is printed
    Warning, ///< warn() only
    Info     ///< inform() and warn()
};

/** Set the global console verbosity (default: Warning). */
void setVerbosity(Verbosity level);

/** Current global console verbosity. */
Verbosity verbosity();

/** Print an informational status line (stdout). */
void inform(const std::string &message);

/** Print a warning (stderr). */
void warn(const std::string &message);

/**
 * Install a per-thread log-context prefix; every inform()/warn() from
 * this thread is tagged "[context] ". Empty clears the prefix. Worker
 * threads serving a request set this on entry and clear it on exit.
 */
void setThreadLogContext(const std::string &context);

/** The calling thread's current log context ("" when unset). */
std::string threadLogContext();

/** Error thrown by fatal(): a user/configuration problem. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Error thrown by panic(): an internal simulator bug. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/**
 * Cooperative-cancellation signal: thrown from inside a long-running
 * simulation loop when its observer asks it to stop (deadline hit,
 * client disconnected, server draining). Not an error in the
 * fatal()/panic() sense — the catcher decides how to answer.
 */
class CancelledError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Abort the current operation due to a user error (bad configuration,
 * invalid argument combination). Throws FatalError.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * fatal() for string literals. Without this overload every call site
 * in a hot function materialises a std::string temporary for the
 * implicit conversion — a heap allocation the optimiser hoists into
 * the *success* path of small inlined functions, which cost the
 * journal's O(1) record path a third of its budget before any message
 * was ever printed.
 */
[[noreturn]] void fatal(const char *message);

/**
 * Abort due to a broken internal invariant (a simulator bug).
 * Throws PanicError.
 */
[[noreturn]] void panic(const std::string &message);

/** panic() for string literals (see the fatal(const char*) note). */
[[noreturn]] void panic(const char *message);

} // namespace pentimento::util

#endif // PENTIMENTO_UTIL_LOGGING_HPP
