/**
 * @file
 * Descriptive statistics used throughout the analysis pipeline.
 *
 * Provides Welford running moments, percentile summaries matching the
 * columns of the paper's Table 1 (MEAN/SD/MIN/25%/50%/75%/MAX), and an
 * ordinary-least-squares line fit used by the threat-model classifiers
 * to extract the sign of ∆ps trends.
 */

#ifndef PENTIMENTO_UTIL_STATS_HPP
#define PENTIMENTO_UTIL_STATS_HPP

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

namespace pentimento::util {

/**
 * Numerically stable running mean/variance accumulator (Welford).
 */
class RunningStats
{
  public:
    /** Add one observation. Header-inline: this is the innermost
     *  accumulation of every TDC trace (millions of samples per
     *  fleet scan). */
    void
    add(double x)
    {
        if (n_ == 0) {
            min_ = x;
            max_ = x;
        } else {
            min_ = std::min(min_, x);
            max_ = std::max(max_, x);
        }
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
    }

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Number of observations added. */
    std::size_t count() const { return n_; }

    /** Mean of the observations (0 when empty). */
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 when fewer than two samples). */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Smallest observation seen. */
    double min() const { return min_; }

    /** Largest observation seen. */
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Seven-number summary as reported per asset in the paper's Table 1.
 */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double sd = 0.0;
    double min = 0.0;
    double p25 = 0.0;
    double p50 = 0.0;
    double p75 = 0.0;
    double max = 0.0;
};

/** Compute the seven-number summary of a sample (copies and sorts). */
Summary summarize(std::span<const double> values);

/**
 * Linear interpolated percentile of a *sorted* sample.
 *
 * Uses the same convention as numpy's default ("linear"), which is
 * what the paper's pandas describe() output reflects.
 *
 * @param sorted ascending sample
 * @param q quantile in [0, 1]
 */
double percentileSorted(std::span<const double> sorted, double q);

/** Result of an ordinary least squares line fit y = a + b x. */
struct LineFit
{
    double intercept = 0.0;
    double slope = 0.0;
    /** Coefficient of determination. */
    double r2 = 0.0;
    /** Standard error of the slope estimate (0 when n < 3). */
    double slope_stderr = 0.0;
};

/** Fit a straight line through (x, y) points by least squares. */
LineFit fitLine(std::span<const double> x, std::span<const double> y);

/** Arithmetic mean (0 for empty input). */
double mean(std::span<const double> values);

/** Unbiased sample standard deviation (0 for n < 2). */
double stddev(std::span<const double> values);

/** Pearson correlation of two equally-sized samples. */
double correlation(std::span<const double> x, std::span<const double> y);

/** Elementwise subtraction of a constant, returning a new vector. */
std::vector<double> centered(std::span<const double> values, double origin);

/**
 * Otsu-style 1D two-cluster threshold: the split value maximising the
 * between-class variance. Used by the TM2 classifier and by ablation
 * benches to split measurements without labels.
 *
 * @param values at least two observations
 * @return threshold; elements <= threshold form the lower cluster
 */
double otsuThreshold(std::span<const double> values);

} // namespace pentimento::util

#endif // PENTIMENTO_UTIL_STATS_HPP
