/**
 * @file
 * Compensated (Neumaier) summation.
 *
 * The segment-timeline aging model accumulates simulated time across
 * potentially millions of irregular steps (multi-year fleet
 * campaigns). Plain `double` accumulation drifts by one ulp per step
 * in the worst case; Neumaier's variant of Kahan summation keeps the
 * running error in a compensation term so the final value is the
 * correctly rounded sum for any realistic step count.
 *
 * Two properties matter to callers:
 *
 *  - for steps that sum exactly in floating point anyway (the hourly
 *    `1.0` steps every experiment uses), the compensation term stays
 *    exactly zero and value() equals the plain sum bit for bit — the
 *    golden regression outputs are unchanged;
 *  - for irregular steps (0.1 h settle slices, randomized tenancy
 *    durations) the result tracks the exact real sum to < 1 ulp
 *    instead of drifting linearly with the step count.
 */

#ifndef PENTIMENTO_UTIL_COMPENSATED_HPP
#define PENTIMENTO_UTIL_COMPENSATED_HPP

#include <cmath>

namespace pentimento::util {

/**
 * Running compensated sum of doubles.
 */
class CompensatedSum
{
  public:
    CompensatedSum() = default;

    /** Start from an initial value (compensation zero). */
    explicit CompensatedSum(double initial) : sum_(initial) {}

    /** Add one term. */
    void
    add(double x)
    {
        const double t = sum_ + x;
        if (std::abs(sum_) >= std::abs(x)) {
            comp_ += (sum_ - t) + x;
        } else {
            comp_ += (x - t) + sum_;
        }
        sum_ = t;
    }

    /** The compensated total. */
    double value() const { return sum_ + comp_; }

    /** Reset to zero. */
    void
    reset()
    {
        sum_ = 0.0;
        comp_ = 0.0;
    }

    /**
     * Raw accumulator parts for checkpointing. Both must round-trip:
     * the compensation term feeds every later add(), so restoring
     * value() alone would change subsequent sums by an ulp.
     */
    double rawSum() const { return sum_; }
    double rawCompensation() const { return comp_; }

    /** Restore the exact accumulator parts captured above. */
    void
    restoreParts(double sum, double comp)
    {
        sum_ = sum;
        comp_ = comp;
    }

  private:
    double sum_ = 0.0;
    double comp_ = 0.0;
};

} // namespace pentimento::util

#endif // PENTIMENTO_UTIL_COMPENSATED_HPP
