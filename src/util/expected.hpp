/**
 * @file
 * Minimal expected-style result type for recoverable errors.
 *
 * The simulator's configuration errors abort via util::fatal — the
 * right behaviour for programmer mistakes, and the wrong one for a
 * corrupt checkpoint file: a resumable campaign must be able to
 * reject a torn or bit-flipped snapshot, fall back to the previous
 * good generation, and keep running. Expected<T> carries either a
 * value or an error message as ordinary control flow, so the whole
 * snapshot load path is abort-free by construction (std::expected is
 * C++23; this is the subset the checkpoint layer needs).
 */

#ifndef PENTIMENTO_UTIL_EXPECTED_HPP
#define PENTIMENTO_UTIL_EXPECTED_HPP

#include <optional>
#include <string>
#include <utility>

#include "util/logging.hpp"

namespace pentimento::util {

/** Tag type carrying an error message into any Expected<T>. */
struct Unexpected
{
    std::string message;
};

/** Build an Unexpected from a message. */
inline Unexpected
unexpected(std::string message)
{
    return Unexpected{std::move(message)};
}

/**
 * A value of type T, or an error message. Accessing the wrong side
 * panics (that is a caller bug, not a data error).
 */
template <typename T> class [[nodiscard]] Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}
    Expected(Unexpected error) : error_(std::move(error.message)) {}

    /** True when a value is held. */
    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    T &
    value()
    {
        if (!ok()) {
            panic("Expected::value on error: " + error_);
        }
        return *value_;
    }
    const T &
    value() const
    {
        if (!ok()) {
            panic("Expected::value on error: " + error_);
        }
        return *value_;
    }

    /** The error message (only when !ok()). */
    const std::string &
    error() const
    {
        if (ok()) {
            panic("Expected::error on success");
        }
        return error_;
    }

  private:
    std::optional<T> value_;
    std::string error_;
};

/**
 * Success-or-error (no payload): the return type of restore and
 * commit operations.
 */
template <> class [[nodiscard]] Expected<void>
{
  public:
    Expected() = default;
    Expected(Unexpected error)
        : ok_(false), error_(std::move(error.message))
    {
    }

    bool ok() const { return ok_; }
    explicit operator bool() const { return ok_; }

    const std::string &
    error() const
    {
        if (ok_) {
            panic("Expected::error on success");
        }
        return error_;
    }

  private:
    bool ok_ = true;
    std::string error_;
};

} // namespace pentimento::util

#endif // PENTIMENTO_UTIL_EXPECTED_HPP
