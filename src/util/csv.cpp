#include "util/csv.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace pentimento::util {

CsvWriter::CsvWriter(const std::string &path) : out_(path)
{
    if (!out_) {
        fatal("CsvWriter: cannot open '" + path + "' for writing");
    }
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) {
        return cell;
    }
    std::string quoted = "\"";
    for (const char c : cell) {
        if (c == '"') {
            quoted += '"';
        }
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) {
            out_ << ',';
        }
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

void
CsvWriter::writeRow(const std::vector<double> &cells)
{
    std::ostringstream row;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) {
            row << ',';
        }
        row << cells[i];
    }
    out_ << row.str() << '\n';
}

void
CsvWriter::close()
{
    out_.close();
}

} // namespace pentimento::util
