#include "util/snapshot.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "util/fault.hpp"
#include "util/logging.hpp"

namespace pentimento::util {

namespace {

/** 8-byte file magic; the trailing byte doubles as a format epoch. */
constexpr unsigned char kMagic[8] = {'P', 'N', 'T', 'M',
                                     'S', 'N', 'P', '\x01'};
constexpr std::size_t kHeaderBytes = 16;
/** Fixed chunk header: tag u32 + seq u32 + payload_len u64. */
constexpr std::size_t kChunkHeaderBytes = 16;
constexpr std::uint32_t kEndTag = snapshotTag('E', 'N', 'D', '!');

/** Software CRC32C table (Castagnoli polynomial, reflected). */
struct Crc32cTable
{
    std::uint32_t entries[256];

    Crc32cTable()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit) {
                crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0x82f63b78u
                                      : crc >> 1;
            }
            entries[i] = crc;
        }
    }
};

std::string
errnoMessage(const std::string &what, const std::string &path)
{
    return what + " " + path + ": " + std::strerror(errno);
}

} // namespace

std::uint32_t
crc32c(const void *data, std::size_t len, std::uint32_t seed)
{
    static const Crc32cTable table;
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; ++i) {
        crc = table.entries[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
    }
    return ~crc;
}

SnapshotWriter::SnapshotWriter()
{
    out_.insert(out_.end(), kMagic, kMagic + sizeof(kMagic));
    const std::uint32_t version = kSnapshotVersion;
    const std::uint32_t flags = 0;
    const auto *v = reinterpret_cast<const std::uint8_t *>(&version);
    const auto *f = reinterpret_cast<const std::uint8_t *>(&flags);
    out_.insert(out_.end(), v, v + 4);
    out_.insert(out_.end(), f, f + 4);
}

void
SnapshotWriter::beginChunk(std::uint32_t tag)
{
    if (chunk_start_ != 0 || finished_) {
        panic("SnapshotWriter::beginChunk: chunk already open or finished");
    }
    chunk_start_ = out_.size();
    u32(tag);
    u32(chunk_count_);
    u64(0); // payload length, patched by endChunk()
}

void
SnapshotWriter::endChunk()
{
    if (chunk_start_ == 0) {
        panic("SnapshotWriter::endChunk: no open chunk");
    }
    const std::uint64_t payload_len =
        out_.size() - chunk_start_ - kChunkHeaderBytes;
    std::memcpy(out_.data() + chunk_start_ + 8, &payload_len,
                sizeof(payload_len));
    const std::uint32_t crc =
        crc32c(out_.data() + chunk_start_, out_.size() - chunk_start_);
    chunk_start_ = 0;
    ++chunk_count_;
    u32(crc);
}

void
SnapshotWriter::u8(std::uint8_t v)
{
    out_.push_back(v);
}

void
SnapshotWriter::u32(std::uint32_t v)
{
    const auto *bytes = reinterpret_cast<const std::uint8_t *>(&v);
    out_.insert(out_.end(), bytes, bytes + sizeof(v));
}

void
SnapshotWriter::u64(std::uint64_t v)
{
    const auto *bytes = reinterpret_cast<const std::uint8_t *>(&v);
    out_.insert(out_.end(), bytes, bytes + sizeof(v));
}

void
SnapshotWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
SnapshotWriter::str(std::string_view v)
{
    u64(v.size());
    const auto *bytes = reinterpret_cast<const std::uint8_t *>(v.data());
    out_.insert(out_.end(), bytes, bytes + v.size());
}

const std::vector<std::uint8_t> &
SnapshotWriter::finish()
{
    if (chunk_start_ != 0) {
        panic("SnapshotWriter::finish: chunk still open");
    }
    if (!finished_) {
        const std::uint32_t preceding = chunk_count_;
        beginChunk(kEndTag);
        u64(preceding);
        endChunk();
        finished_ = true;
    }
    return out_;
}

Expected<void>
SnapshotWriter::commit(const std::string &path)
{
    const std::vector<std::uint8_t> &image = finish();
    const std::string tmp = path + ".tmp";
    if (fault::shouldFail("snapshot.commit.enospc")) {
        return unexpected("snapshot: cannot create " + tmp +
                          ": No space left on device (injected)");
    }
    std::FILE *fp = std::fopen(tmp.c_str(), "wb");
    if (fp == nullptr) {
        return unexpected(errnoMessage("snapshot: cannot create", tmp));
    }
    // A torn rename writes a truncated image but then "succeeds" all
    // the way through rename, leaving a corrupt destination — the
    // failure mode a crash between fwrite and fsync would produce on
    // a journal-less filesystem. The .prev generation must rescue it.
    const bool torn = fault::shouldFail("snapshot.commit.torn_rename");
    const bool short_write =
        !torn && fault::shouldFail("snapshot.commit.short_write");
    const std::size_t intend =
        (torn || short_write) ? image.size() / 2 : image.size();
    const std::size_t written =
        intend == 0 ? 0 : std::fwrite(image.data(), 1, intend, fp);
    if (short_write || written != intend || std::fflush(fp) != 0 ||
        fsync(fileno(fp)) != 0) {
        const Expected<void> err =
            unexpected(errnoMessage("snapshot: short write to", tmp));
        std::fclose(fp);
        std::remove(tmp.c_str());
        return err;
    }
    if (std::fclose(fp) != 0) {
        std::remove(tmp.c_str());
        return unexpected(errnoMessage("snapshot: close failed for", tmp));
    }
    if (fault::shouldFail("snapshot.commit.rename")) {
        std::remove(tmp.c_str());
        return unexpected("snapshot: rename failed for " + tmp +
                          " (injected)");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const Expected<void> err =
            unexpected(errnoMessage("snapshot: rename failed for", tmp));
        std::remove(tmp.c_str());
        return err;
    }
    if (torn) {
        return unexpected("snapshot: torn rename for " + path +
                          " (injected; destination truncated)");
    }
    return {};
}

Expected<void>
SnapshotWriter::commitRotating(const std::string &path)
{
    // Keep the previous good generation: path -> path.prev, then the
    // fresh image lands on path. A crash between the two renames
    // leaves .prev loadable; a torn .tmp write never touches either.
    const std::string prev = path + ".prev";
    if (std::rename(path.c_str(), prev.c_str()) != 0 && errno != ENOENT) {
        return unexpected(errnoMessage("snapshot: rotate failed for", path));
    }
    return commit(path);
}

Expected<SnapshotReader>
SnapshotReader::fromBuffer(std::vector<std::uint8_t> image)
{
    if (image.size() < kHeaderBytes) {
        return unexpected("snapshot: file shorter than header");
    }
    if (std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0) {
        return unexpected("snapshot: bad magic (not a snapshot file)");
    }
    std::uint32_t version = 0;
    std::memcpy(&version, image.data() + 8, sizeof(version));
    if (version != kSnapshotVersion) {
        return unexpected("snapshot: unsupported format version " +
                          std::to_string(version) + " (expected " +
                          std::to_string(kSnapshotVersion) + ")");
    }
    std::uint32_t flags = 0;
    std::memcpy(&flags, image.data() + 12, sizeof(flags));
    if (flags != 0) {
        return unexpected("snapshot: unsupported header flags");
    }
    SnapshotReader reader;
    reader.image_ = std::move(image);
    reader.cursor_ = kHeaderBytes;
    return reader;
}

Expected<SnapshotReader>
SnapshotReader::open(const std::string &path)
{
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (fp == nullptr) {
        return unexpected(errnoMessage("snapshot: cannot open", path));
    }
    std::vector<std::uint8_t> image;
    unsigned char buf[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), fp)) > 0) {
        image.insert(image.end(), buf, buf + got);
    }
    const bool read_error = std::ferror(fp) != 0;
    std::fclose(fp);
    if (read_error) {
        return unexpected(errnoMessage("snapshot: read failed for", path));
    }
    if (image.size() > kHeaderBytes &&
        fault::shouldFail("snapshot.load.corrupt_crc")) {
        // Media bit-rot: flip one mid-file byte so some chunk's CRC
        // check must reject the image.
        image[kHeaderBytes + (image.size() - kHeaderBytes) / 2] ^= 0x40u;
    }
    return fromBuffer(std::move(image));
}

namespace {

/**
 * Full structural walk of an image whose header already validated:
 * every chunk header in bounds, sequence numbers dense, every CRC
 * good, exactly one terminal END chunk, no trailing bytes. One cheap
 * CRC pass over memory — done up front by openWithFallback so a torn
 * or bit-rotten generation is rejected before anyone restores from it.
 */
Expected<void>
validateChunks(const std::vector<std::uint8_t> &image)
{
    std::size_t off = kHeaderBytes;
    std::uint32_t seq = 0;
    bool saw_end = false;
    while (off < image.size()) {
        if (saw_end) {
            return unexpected("snapshot: trailing bytes after END chunk");
        }
        if (image.size() - off < kChunkHeaderBytes + 4) {
            return unexpected("snapshot: truncated chunk header");
        }
        std::uint32_t tag = 0;
        std::uint32_t chunk_seq = 0;
        std::uint64_t len = 0;
        std::memcpy(&tag, image.data() + off, sizeof(tag));
        std::memcpy(&chunk_seq, image.data() + off + 4,
                    sizeof(chunk_seq));
        std::memcpy(&len, image.data() + off + 8, sizeof(len));
        if (chunk_seq != seq) {
            return unexpected("snapshot: chunk out of sequence");
        }
        if (len > image.size() - off - kChunkHeaderBytes - 4) {
            return unexpected("snapshot: chunk length out of bounds");
        }
        const std::size_t end = off + kChunkHeaderBytes +
                                static_cast<std::size_t>(len);
        std::uint32_t stored = 0;
        std::memcpy(&stored, image.data() + end, sizeof(stored));
        if (crc32c(image.data() + off, end - off) != stored) {
            return unexpected("snapshot: chunk CRC mismatch");
        }
        saw_end = tag == kEndTag;
        off = end + 4;
        ++seq;
    }
    if (!saw_end) {
        return unexpected("snapshot: missing END chunk");
    }
    return {};
}

} // namespace

Expected<SnapshotReader>
SnapshotReader::openWithFallback(const std::string &path,
                                 bool *used_fallback)
{
    if (used_fallback != nullptr) {
        *used_fallback = false;
    }
    Expected<SnapshotReader> primary = open(path);
    if (primary.ok()) {
        const Expected<void> valid =
            validateChunks(primary.value().image_);
        if (valid.ok()) {
            return primary;
        }
        primary = Expected<SnapshotReader>(
            unexpected(valid.error() + " in " + path));
    }
    Expected<SnapshotReader> previous = open(path + ".prev");
    if (previous.ok()) {
        const Expected<void> valid =
            validateChunks(previous.value().image_);
        if (!valid.ok()) {
            return unexpected(primary.error() +
                              " (fallback also failed: " + valid.error() +
                              " in " + path + ".prev)");
        }
        if (used_fallback != nullptr) {
            *used_fallback = true;
        }
        return previous;
    }
    return unexpected(primary.error() +
                      " (fallback also failed: " + previous.error() + ")");
}

bool
SnapshotReader::enterChunk(std::uint32_t tag)
{
    if (!ok()) {
        return false;
    }
    if (in_chunk_) {
        panic("SnapshotReader::enterChunk: chunk already open");
    }
    if (image_.size() - cursor_ < kChunkHeaderBytes + 4) {
        fail("snapshot: truncated at chunk header");
        return false;
    }
    std::uint32_t got_tag = 0;
    std::uint32_t got_seq = 0;
    std::uint64_t payload_len = 0;
    std::memcpy(&got_tag, image_.data() + cursor_, 4);
    std::memcpy(&got_seq, image_.data() + cursor_ + 4, 4);
    std::memcpy(&payload_len, image_.data() + cursor_ + 8, 8);
    if (payload_len > image_.size() - cursor_ - kChunkHeaderBytes - 4) {
        fail("snapshot: chunk payload overruns file");
        return false;
    }
    const std::size_t payload_begin = cursor_ + kChunkHeaderBytes;
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, image_.data() + payload_begin + payload_len, 4);
    const std::uint32_t computed_crc =
        crc32c(image_.data() + cursor_, kChunkHeaderBytes + payload_len);
    if (stored_crc != computed_crc) {
        fail("snapshot: CRC mismatch in chunk " + std::to_string(got_seq));
        return false;
    }
    if (got_seq != next_seq_) {
        fail("snapshot: chunk sequence break (expected " +
             std::to_string(next_seq_) + ", found " +
             std::to_string(got_seq) + " — duplicated or missing chunk)");
        return false;
    }
    if (got_tag != tag) {
        fail("snapshot: unexpected chunk tag in chunk " +
             std::to_string(got_seq));
        return false;
    }
    cursor_ = payload_begin;
    payload_end_ = payload_begin + payload_len;
    chunk_end_ = payload_end_ + 4;
    in_chunk_ = true;
    ++next_seq_;
    return true;
}

bool
SnapshotReader::leaveChunk()
{
    if (!ok()) {
        return false;
    }
    if (!in_chunk_) {
        panic("SnapshotReader::leaveChunk: no open chunk");
    }
    if (cursor_ != payload_end_) {
        fail("snapshot: chunk payload not fully consumed (layout drift)");
        return false;
    }
    cursor_ = chunk_end_;
    in_chunk_ = false;
    payload_end_ = 0;
    chunk_end_ = 0;
    return true;
}

bool
SnapshotReader::expectEnd()
{
    if (!enterChunk(kEndTag)) {
        return false;
    }
    const std::uint64_t preceding = u64();
    if (!leaveChunk()) {
        return false;
    }
    if (ok() && preceding + 1 != next_seq_) {
        fail("snapshot: END chunk count mismatch");
        return false;
    }
    if (ok() && cursor_ != image_.size()) {
        fail("snapshot: trailing bytes after END chunk");
        return false;
    }
    return ok();
}

bool
SnapshotReader::take(void *dst, std::size_t len)
{
    if (!ok()) {
        std::memset(dst, 0, len);
        return false;
    }
    if (!in_chunk_ || payload_end_ - cursor_ < len) {
        std::memset(dst, 0, len);
        fail("snapshot: field read past end of chunk payload");
        return false;
    }
    std::memcpy(dst, image_.data() + cursor_, len);
    cursor_ += len;
    return true;
}

std::uint8_t
SnapshotReader::u8()
{
    std::uint8_t v = 0;
    take(&v, sizeof(v));
    return v;
}

std::uint32_t
SnapshotReader::u32()
{
    std::uint32_t v = 0;
    take(&v, sizeof(v));
    return v;
}

std::uint64_t
SnapshotReader::u64()
{
    std::uint64_t v = 0;
    take(&v, sizeof(v));
    return v;
}

double
SnapshotReader::f64()
{
    std::uint64_t bits = 0;
    take(&bits, sizeof(bits));
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
SnapshotReader::str()
{
    const std::uint64_t len = u64();
    if (!ok()) {
        return {};
    }
    if (!in_chunk_ || payload_end_ - cursor_ < len) {
        fail("snapshot: string length overruns chunk payload");
        return {};
    }
    std::string v(reinterpret_cast<const char *>(image_.data() + cursor_),
                  len);
    cursor_ += len;
    return v;
}

void
SnapshotReader::fail(std::string message)
{
    if (error_.empty()) {
        error_ = std::move(message);
    }
}

} // namespace pentimento::util
