#include "util/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "util/rng.hpp"

namespace pentimento::util::fault {

namespace {

bool
isPointChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
           c == '.' || c == '_';
}

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
        s.remove_prefix(1);
    }
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
        s.remove_suffix(1);
    }
    return s;
}

bool
parseU64(std::string_view s, std::uint64_t *out)
{
    if (s.empty()) {
        return false;
    }
    std::uint64_t v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9') {
            return false;
        }
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    *out = v;
    return true;
}

bool
parseProbability(std::string_view s, double *out)
{
    if (s.empty()) {
        return false;
    }
    char *end = nullptr;
    const std::string copy(s);
    const double v = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size() || !(v >= 0.0) || v > 1.0) {
        return false;
    }
    *out = v;
    return true;
}

/** Parse one `point[:k=v[,k=v...]]` clause. */
Expected<PointConfig>
parsePoint(std::string_view clause)
{
    PointConfig config;
    const std::size_t colon = clause.find(':');
    std::string_view name = trim(clause.substr(0, colon));
    if (name.empty()) {
        return unexpected("fault schedule: empty point name");
    }
    for (const char c : name) {
        if (!isPointChar(c)) {
            return unexpected("fault schedule: bad point name '" +
                              std::string(name) + "'");
        }
    }
    config.point = std::string(name);
    if (colon == std::string_view::npos) {
        return config;
    }
    std::string_view rest = clause.substr(colon + 1);
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        std::string_view item = trim(rest.substr(0, comma));
        rest = comma == std::string_view::npos
                   ? std::string_view{}
                   : rest.substr(comma + 1);
        const std::size_t eq = item.find('=');
        if (eq == std::string_view::npos) {
            return unexpected("fault schedule: expected key=value in '" +
                              std::string(item) + "'");
        }
        const std::string_view key = trim(item.substr(0, eq));
        const std::string_view value = trim(item.substr(eq + 1));
        if (key == "p") {
            if (!parseProbability(value, &config.probability)) {
                return unexpected(
                    "fault schedule: bad probability for point '" +
                    config.point + "'");
            }
        } else if (key == "skip") {
            if (!parseU64(value, &config.skip)) {
                return unexpected("fault schedule: bad skip for point '" +
                                  config.point + "'");
            }
        } else if (key == "max") {
            if (!parseU64(value, &config.max_fires)) {
                return unexpected("fault schedule: bad max for point '" +
                                  config.point + "'");
            }
        } else {
            return unexpected("fault schedule: unknown key '" +
                              std::string(key) + "' for point '" +
                              config.point + "'");
        }
    }
    return config;
}

} // namespace

Expected<Schedule>
parseSchedule(std::string_view text)
{
    Schedule schedule;
    std::string_view rest = text;
    bool first = true;
    while (!rest.empty()) {
        const std::size_t semi = rest.find(';');
        std::string_view clause = trim(rest.substr(0, semi));
        rest = semi == std::string_view::npos ? std::string_view{}
                                              : rest.substr(semi + 1);
        if (clause.empty()) {
            continue;
        }
        if (first && clause.substr(0, 5) == "seed=") {
            if (!parseU64(trim(clause.substr(5)), &schedule.seed)) {
                return unexpected("fault schedule: bad seed");
            }
            first = false;
            continue;
        }
        first = false;
        Expected<PointConfig> point = parsePoint(clause);
        if (!point.ok()) {
            return unexpected(point.error());
        }
        for (const PointConfig &existing : schedule.points) {
            if (existing.point == point.value().point) {
                return unexpected("fault schedule: duplicate point '" +
                                  existing.point + "'");
            }
        }
        schedule.points.push_back(std::move(point.value()));
    }
    return schedule;
}

std::string
formatSchedule(const Schedule &schedule)
{
    std::string out = "seed=" + std::to_string(schedule.seed);
    for (const PointConfig &point : schedule.points) {
        out += ";" + point.point +
               ":p=" + std::to_string(point.probability) +
               ",skip=" + std::to_string(point.skip);
        if (point.max_fires != ~0ULL) {
            out += ",max=" + std::to_string(point.max_fires);
        }
    }
    return out;
}

#if defined(PENTIMENTO_FAULT_INJECTION)

namespace {

/** One armed point: its config, its private Rng, its counters. */
struct PointState
{
    PointConfig config;
    Rng rng{0};
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
};

struct Registry
{
    std::mutex mutex;
    /** Schedule order, for stats(). */
    std::vector<std::string> order;
    std::map<std::string, PointState, std::less<>> points;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/** Fast-path gate: false ⇒ shouldFail() returns without locking. */
std::atomic<bool> g_armed{false};

} // namespace

void
arm(const Schedule &schedule)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.points.clear();
    r.order.clear();
    for (const PointConfig &config : schedule.points) {
        PointState state;
        state.config = config;
        // Per-point stream derived from the single schedule seed: the
        // fire sequence at a point never depends on evaluation
        // interleavings at other points (or on other threads).
        Rng base(schedule.seed);
        state.rng = base.split(std::string_view(config.point));
        r.order.push_back(config.point);
        r.points.emplace(config.point, std::move(state));
    }
    g_armed.store(!r.points.empty(), std::memory_order_release);
}

void
disarm()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    g_armed.store(false, std::memory_order_release);
    r.points.clear();
    r.order.clear();
}

bool
armed()
{
    return g_armed.load(std::memory_order_acquire);
}

bool
shouldFail(const char *point)
{
    if (!g_armed.load(std::memory_order_relaxed)) {
        return false;
    }
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.points.find(std::string_view(point));
    if (it == r.points.end()) {
        return false;
    }
    PointState &state = it->second;
    ++state.evaluations;
    if (state.evaluations <= state.config.skip) {
        return false;
    }
    if (state.fires >= state.config.max_fires) {
        return false;
    }
    // Always draw, even at p=1: every evaluation past `skip` consumes
    // exactly one variate, so the fire pattern is a pure function of
    // the evaluation ordinal.
    if (!state.rng.bernoulli(state.config.probability)) {
        return false;
    }
    ++state.fires;
    return true;
}

std::vector<PointStats>
stats()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<PointStats> out;
    out.reserve(r.order.size());
    for (const std::string &name : r.order) {
        const auto it = r.points.find(name);
        if (it == r.points.end()) {
            continue;
        }
        out.push_back(PointStats{name, it->second.evaluations,
                                 it->second.fires});
    }
    return out;
}

Expected<void>
armFromEnv()
{
    const char *env = std::getenv("PENTIMENTO_FAULTS");
    if (env == nullptr || env[0] == '\0') {
        return {};
    }
    Expected<Schedule> schedule = parseSchedule(env);
    if (!schedule.ok()) {
        return unexpected("PENTIMENTO_FAULTS: " + schedule.error());
    }
    arm(schedule.value());
    return {};
}

#endif // PENTIMENTO_FAULT_INJECTION

} // namespace pentimento::util::fault
