#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pentimento::util {

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0) {
        return;
    }
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double
RunningStats::variance() const
{
    if (n_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
percentileSorted(std::span<const double> sorted, double q)
{
    if (sorted.empty()) {
        throw std::invalid_argument("percentileSorted: empty sample");
    }
    if (q < 0.0 || q > 1.0) {
        throw std::invalid_argument("percentileSorted: q outside [0,1]");
    }
    if (sorted.size() == 1) {
        return sorted[0];
    }
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary
summarize(std::span<const double> values)
{
    Summary s;
    s.count = values.size();
    if (values.empty()) {
        return s;
    }
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());

    RunningStats rs;
    for (const double v : sorted) {
        rs.add(v);
    }
    s.mean = rs.mean();
    s.sd = rs.stddev();
    s.min = sorted.front();
    s.max = sorted.back();
    s.p25 = percentileSorted(sorted, 0.25);
    s.p50 = percentileSorted(sorted, 0.50);
    s.p75 = percentileSorted(sorted, 0.75);
    return s;
}

LineFit
fitLine(std::span<const double> x, std::span<const double> y)
{
    if (x.size() != y.size()) {
        throw std::invalid_argument("fitLine: size mismatch");
    }
    if (x.size() < 2) {
        throw std::invalid_argument("fitLine: need at least two points");
    }
    const double n = static_cast<double>(x.size());
    double sx = 0.0, sy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
    }
    const double mx = sx / n;
    const double my = sy / n;
    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    LineFit fit;
    if (sxx == 0.0) {
        fit.intercept = my;
        return fit;
    }
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
    if (x.size() > 2) {
        const double sse = syy - fit.slope * sxy;
        const double mse =
            std::max(0.0, sse) / (n - 2.0);
        fit.slope_stderr = std::sqrt(mse / sxx);
    }
    return fit;
}

double
mean(std::span<const double> values)
{
    RunningStats rs;
    for (const double v : values) {
        rs.add(v);
    }
    return rs.mean();
}

double
stddev(std::span<const double> values)
{
    RunningStats rs;
    for (const double v : values) {
        rs.add(v);
    }
    return rs.stddev();
}

double
correlation(std::span<const double> x, std::span<const double> y)
{
    if (x.size() != y.size() || x.size() < 2) {
        throw std::invalid_argument("correlation: bad sample sizes");
    }
    const double mx = mean(x);
    const double my = mean(y);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) {
        return 0.0;
    }
    return sxy / std::sqrt(sxx * syy);
}

double
otsuThreshold(std::span<const double> values)
{
    if (values.size() < 2) {
        throw std::invalid_argument("otsuThreshold: need two values");
    }
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    double best_threshold = sorted.front();
    double best_between = -1.0;
    for (std::size_t split = 1; split < n; ++split) {
        const double w0 = static_cast<double>(split);
        const double w1 = static_cast<double>(n - split);
        const double m0 = mean({sorted.data(), split});
        const double m1 = mean({sorted.data() + split, n - split});
        const double between = w0 * w1 * (m0 - m1) * (m0 - m1);
        if (between > best_between) {
            best_between = between;
            best_threshold = 0.5 * (sorted[split - 1] + sorted[split]);
        }
    }
    return best_threshold;
}

std::vector<double>
centered(std::span<const double> values, double origin)
{
    std::vector<double> out;
    out.reserve(values.size());
    for (const double v : values) {
        out.push_back(v - origin);
    }
    return out;
}

} // namespace pentimento::util
