/**
 * @file
 * Unit helpers shared across the simulator.
 *
 * The codebase carries delays in picoseconds, stress time in hours and
 * temperature in kelvin; these helpers make conversions explicit at
 * call sites instead of burying magic constants.
 */

#ifndef PENTIMENTO_UTIL_UNITS_HPP
#define PENTIMENTO_UTIL_UNITS_HPP

namespace pentimento::util {

/** Boltzmann constant in eV/K, used by Arrhenius acceleration. */
inline constexpr double kBoltzmannEv = 8.617333262e-5;

/** Convert degrees Celsius to kelvin. */
constexpr double
celsiusToKelvin(double celsius)
{
    return celsius + 273.15;
}

/** Convert kelvin to degrees Celsius. */
constexpr double
kelvinToCelsius(double kelvin)
{
    return kelvin - 273.15;
}

/** Convert hours to seconds. */
constexpr double
hoursToSeconds(double hours)
{
    return hours * 3600.0;
}

/** Convert seconds to hours. */
constexpr double
secondsToHours(double seconds)
{
    return seconds / 3600.0;
}

/** Convert picoseconds to nanoseconds. */
constexpr double
psToNs(double ps)
{
    return ps * 1e-3;
}

/** Convert nanoseconds to picoseconds. */
constexpr double
nsToPs(double ns)
{
    return ns * 1e3;
}

} // namespace pentimento::util

#endif // PENTIMENTO_UTIL_UNITS_HPP
