/**
 * @file
 * Terminal rendering of the paper's time-series figures.
 *
 * Each bench regenerates a figure as numbers *and* as an ASCII chart so
 * the shape (burn-0 falling, burn-1 rising, recovery kinks) is visible
 * without plotting tools. Multiple series share one canvas; each series
 * is drawn with its own glyph.
 */

#ifndef PENTIMENTO_UTIL_ASCII_CHART_HPP
#define PENTIMENTO_UTIL_ASCII_CHART_HPP

#include <span>
#include <string>
#include <vector>

namespace pentimento::util {

/** One plotted series: points plus the glyph used to draw them. */
struct ChartSeries
{
    std::string label;
    char glyph = '*';
    std::vector<double> x;
    std::vector<double> y;
};

/**
 * Multi-series scatter/line chart rendered to a character canvas.
 */
class AsciiChart
{
  public:
    /**
     * @param width canvas width in characters (plot area)
     * @param height canvas height in rows (plot area)
     */
    AsciiChart(int width = 72, int height = 20);

    /** Add a series; x and y must be the same length. */
    void addSeries(std::string label, char glyph,
                   std::span<const double> x, std::span<const double> y);

    /** Optional chart title printed above the canvas. */
    void setTitle(std::string title) { title_ = std::move(title); }

    /** Optional axis captions. */
    void setAxisLabels(std::string x_label, std::string y_label);

    /**
     * Draw a vertical marker at the given x (e.g. the burn-to-recovery
     * switch at hour 200 in Figure 6).
     */
    void addVerticalMarker(double x, char glyph = '|');

    /** Render the chart (canvas, y-axis ticks, legend) to a string. */
    std::string render() const;

  private:
    int width_;
    int height_;
    std::string title_;
    std::string x_label_;
    std::string y_label_;
    std::vector<ChartSeries> series_;
    std::vector<std::pair<double, char>> markers_;
};

} // namespace pentimento::util

#endif // PENTIMENTO_UTIL_ASCII_CHART_HPP
