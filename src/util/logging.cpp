#include "util/logging.hpp"

#include <iostream>

namespace pentimento::util {

namespace {

Verbosity g_verbosity = Verbosity::Warning;

} // namespace

void
setVerbosity(Verbosity level)
{
    g_verbosity = level;
}

Verbosity
verbosity()
{
    return g_verbosity;
}

void
inform(const std::string &message)
{
    if (g_verbosity >= Verbosity::Info) {
        std::cout << "info: " << message << "\n";
    }
}

void
warn(const std::string &message)
{
    if (g_verbosity >= Verbosity::Warning) {
        std::cerr << "warn: " << message << "\n";
    }
}

void
fatal(const std::string &message)
{
    throw FatalError(message);
}

void
fatal(const char *message)
{
    // The std::string for the exception is built HERE, behind the
    // call, so throwing call sites stay allocation-free until they
    // actually throw.
    throw FatalError(message);
}

void
panic(const std::string &message)
{
    throw PanicError(message);
}

void
panic(const char *message)
{
    throw PanicError(message);
}

} // namespace pentimento::util
