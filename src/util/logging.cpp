#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace pentimento::util {

namespace {

std::atomic<Verbosity> g_verbosity{Verbosity::Warning};

/** Serialises line emission so concurrent threads never interleave
 *  characters within a line (stdout and stderr share the mutex so an
 *  inform/warn pair from one thread stays ordered). */
std::mutex g_emit_mutex;

thread_local std::string t_log_context;

void
emit(std::ostream &stream, const char *severity,
     const std::string &message)
{
    std::lock_guard<std::mutex> lock(g_emit_mutex);
    stream << severity;
    if (!t_log_context.empty()) {
        stream << "[" << t_log_context << "] ";
    }
    stream << message << "\n";
}

} // namespace

void
setVerbosity(Verbosity level)
{
    g_verbosity.store(level, std::memory_order_relaxed);
}

Verbosity
verbosity()
{
    return g_verbosity.load(std::memory_order_relaxed);
}

void
setThreadLogContext(const std::string &context)
{
    t_log_context = context;
}

std::string
threadLogContext()
{
    return t_log_context;
}

void
inform(const std::string &message)
{
    if (verbosity() >= Verbosity::Info) {
        emit(std::cout, "info: ", message);
    }
}

void
warn(const std::string &message)
{
    if (verbosity() >= Verbosity::Warning) {
        emit(std::cerr, "warn: ", message);
    }
}

void
fatal(const std::string &message)
{
    throw FatalError(message);
}

void
fatal(const char *message)
{
    // The std::string for the exception is built HERE, behind the
    // call, so throwing call sites stay allocation-free until they
    // actually throw.
    throw FatalError(message);
}

void
panic(const std::string &message)
{
    throw PanicError(message);
}

void
panic(const char *message)
{
    throw PanicError(message);
}

} // namespace pentimento::util
