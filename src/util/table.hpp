/**
 * @file
 * Fixed-width table rendering for bench output.
 *
 * The table/figure benches print the same rows the paper reports;
 * TablePrinter handles alignment and numeric formatting so each bench
 * focuses on content.
 */

#ifndef PENTIMENTO_UTIL_TABLE_HPP
#define PENTIMENTO_UTIL_TABLE_HPP

#include <string>
#include <vector>

namespace pentimento::util {

/**
 * Accumulates rows of cells and renders them with aligned columns.
 */
class TablePrinter
{
  public:
    /** Define the header row. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a fully formatted row (must match the header arity). */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision (helper for rows). */
    static std::string num(double value, int precision = 1);

    /** Render the table with a header underline. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pentimento::util

#endif // PENTIMENTO_UTIL_TABLE_HPP
