#include "util/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace pentimento::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty()) {
        throw std::invalid_argument("TablePrinter: no headers");
    }
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("TablePrinter: row arity mismatch");
    }
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream out;
    const auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << (c == 0 ? "" : "  ");
            // Left-align the first column, right-align the rest
            // (numeric columns read better right-aligned).
            if (c == 0) {
                out << row[c]
                    << std::string(widths[c] - row[c].size(), ' ');
            } else {
                out << std::string(widths[c] - row[c].size(), ' ')
                    << row[c];
            }
        }
        out << "\n";
    };
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c == 0 ? 0 : 2);
    }
    out << std::string(total, '-') << "\n";
    for (const auto &row : rows_) {
        emit(row);
    }
    return out.str();
}

} // namespace pentimento::util
