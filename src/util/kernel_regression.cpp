#include "util/kernel_regression.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace pentimento::util {

namespace {

/** Silverman's rule-of-thumb bandwidth for a Gaussian kernel. */
double
silvermanBandwidth(std::span<const double> x)
{
    const double sd = stddev(x);
    const double n = static_cast<double>(x.size());
    if (sd <= 0.0) {
        return 1.0;
    }
    return 1.06 * sd * std::pow(n, -0.2);
}

double
gaussianKernel(double u)
{
    return std::exp(-0.5 * u * u);
}

} // namespace

KernelRegression::KernelRegression(std::span<const double> x,
                                   std::span<const double> y,
                                   double bandwidth)
    : x_(x.begin(), x.end()), y_(y.begin(), y.end()), bandwidth_(bandwidth)
{
    if (x_.size() != y_.size()) {
        throw std::invalid_argument("KernelRegression: size mismatch");
    }
    if (x_.empty()) {
        throw std::invalid_argument("KernelRegression: empty sample");
    }
    if (bandwidth_ <= 0.0) {
        bandwidth_ = silvermanBandwidth(x_);
    }
}

double
KernelRegression::at(double query) const
{
    // Weighted local linear fit around the query point. s* are the
    // weighted moments of the centred predictor; the fitted intercept
    // is the smoothed value.
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, t0 = 0.0, t1 = 0.0;
    for (std::size_t i = 0; i < x_.size(); ++i) {
        const double d = x_[i] - query;
        const double w = gaussianKernel(d / bandwidth_);
        s0 += w;
        s1 += w * d;
        s2 += w * d * d;
        t0 += w * y_[i];
        t1 += w * d * y_[i];
    }
    const double denom = s0 * s2 - s1 * s1;
    if (s0 == 0.0) {
        return 0.0;
    }
    if (std::abs(denom) < 1e-12 * std::max(1.0, s0 * s2)) {
        // Degenerate neighbourhood (all points at one x): fall back to
        // the locally constant (Nadaraya-Watson) estimate.
        return t0 / s0;
    }
    return (s2 * t0 - s1 * t1) / denom;
}

std::vector<double>
KernelRegression::fittedValues() const
{
    return at(std::span<const double>(x_));
}

std::vector<double>
KernelRegression::at(std::span<const double> queries) const
{
    std::vector<double> out;
    out.reserve(queries.size());
    for (const double q : queries) {
        out.push_back(at(q));
    }
    return out;
}

std::vector<double>
kernelSmooth(std::span<const double> x, std::span<const double> y,
             double bandwidth)
{
    return KernelRegression(x, y, bandwidth).fittedValues();
}

} // namespace pentimento::util
