/**
 * @file
 * Deterministic, schedule-driven fault injection.
 *
 * Robustness code is only as good as the failures it has actually
 * seen. This registry lets tests and chaos harnesses *schedule*
 * failures at named injection points — `snapshot.commit.short_write`,
 * `client.recv.stall`, … — instead of hoping CI gets unlucky. A
 * schedule is a single string:
 *
 *     seed=42;snapshot.commit.short_write:p=0.5,skip=2,max=1;client.send.reset:p=0.2
 *
 * Per point: `p` is the fire probability per evaluation (default 1),
 * `skip` ignores the first N evaluations, `max` caps total fires.
 * Every point draws from its own Rng derived as
 * `Rng(seed).split(point_name)`, so the fire sequence at a point is a
 * pure function of (schedule seed, point name, evaluation ordinal) —
 * independent of how evaluations at *other* points interleave across
 * threads. Same seed ⇒ same injected-fault sequence, in every process
 * that arms the same schedule (workers inherit it via the
 * PENTIMENTO_FAULTS environment variable).
 *
 * Injection points call `shouldFail("name")`; when nothing is armed
 * this is one relaxed atomic load. Configuring
 * -DPENTIMENTO_FAULT_INJECTION=OFF compiles every call to a constant
 * `false` so release builds carry no trace of the machinery.
 *
 * Point naming convention: `<subsystem>.<operation>.<failure>`, all
 * lower-case, e.g. `snapshot.commit.torn_rename`. Grep for
 * `fault::shouldFail` to enumerate every live point.
 */

#ifndef PENTIMENTO_UTIL_FAULT_HPP
#define PENTIMENTO_UTIL_FAULT_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.hpp"

namespace pentimento::util::fault {

/** Configuration of one named injection point. */
struct PointConfig
{
    std::string point;
    /** Fire probability per evaluation (clamped to [0, 1]). */
    double probability = 1.0;
    /** Ignore the first `skip` evaluations entirely. */
    std::uint64_t skip = 0;
    /** Stop firing after this many fires (~0 = unbounded). */
    std::uint64_t max_fires = ~0ULL;
};

/** A complete fault schedule: one seed, many points. */
struct Schedule
{
    std::uint64_t seed = 0;
    std::vector<PointConfig> points;
};

/** Observed counters for one armed point (tests, chaos reports). */
struct PointStats
{
    std::string point;
    std::uint64_t evaluations = 0;
    std::uint64_t fires = 0;
};

/**
 * Parse the `seed=N;point:k=v,...` grammar. Unknown keys, malformed
 * numbers, and empty point names are errors — a typoed chaos schedule
 * silently arming nothing would fake a green run.
 */
Expected<Schedule> parseSchedule(std::string_view text);

/** Render a schedule back to its canonical string form. */
std::string formatSchedule(const Schedule &schedule);

#if defined(PENTIMENTO_FAULT_INJECTION)

/** Arm a schedule, replacing any previous one. Empty = disarm. */
void arm(const Schedule &schedule);

/** Drop every armed point (and its counters). */
void disarm();

/** True while at least one point is armed. */
bool armed();

/**
 * Evaluate the injection point `point`. Returns true when the armed
 * schedule says this call must fail. One relaxed atomic load when
 * nothing is armed.
 */
bool shouldFail(const char *point);

/** Counters for every armed point, in schedule order. */
std::vector<PointStats> stats();

/**
 * Arm from $PENTIMENTO_FAULTS when set (no-op otherwise). A malformed
 * schedule is returned as an error, never half-armed.
 */
Expected<void> armFromEnv();

#else // fault injection compiled out: every call is a no-op constant

inline void arm(const Schedule &) {}
inline void disarm() {}
inline bool armed() { return false; }
inline bool shouldFail(const char *) { return false; }
inline std::vector<PointStats> stats() { return {}; }
inline Expected<void> armFromEnv() { return {}; }

#endif // PENTIMENTO_FAULT_INJECTION

} // namespace pentimento::util::fault

#endif // PENTIMENTO_UTIL_FAULT_HPP
