/**
 * @file
 * Local-linear kernel regression.
 *
 * The paper smooths every ∆ps time series "with a kernel regression
 * ... the Python statsmodels package's nonparametric kernel regression
 * class is used in continuous mode with a local linear estimator".
 * This is the C++ equivalent: a Nadaraya–Watson style local *linear*
 * estimator with a Gaussian kernel and a rule-of-thumb bandwidth.
 */

#ifndef PENTIMENTO_UTIL_KERNEL_REGRESSION_HPP
#define PENTIMENTO_UTIL_KERNEL_REGRESSION_HPP

#include <span>
#include <vector>

namespace pentimento::util {

/**
 * Local-linear kernel smoother over scattered (x, y) observations.
 *
 * Fitting solves, for each query point q, the weighted least squares
 * problem min_{a,b} Σ_i K((x_i - q)/h) (y_i - a - b (x_i - q))^2 and
 * reports a (the locally fitted value at q).
 */
class KernelRegression
{
  public:
    /**
     * Build the smoother over a training sample.
     *
     * @param x predictor values (e.g. hours)
     * @param y responses (e.g. ∆ps)
     * @param bandwidth kernel bandwidth h; <= 0 selects Silverman's
     *        rule of thumb from the predictor sample
     */
    KernelRegression(std::span<const double> x, std::span<const double> y,
                     double bandwidth = 0.0);

    /** Smoothed estimate at a single query point. */
    double at(double query) const;

    /** Smoothed estimates at each training x (the fitted curve). */
    std::vector<double> fittedValues() const;

    /** Smoothed estimates at arbitrary query points. */
    std::vector<double> at(std::span<const double> queries) const;

    /** Bandwidth in use after rule-of-thumb selection. */
    double bandwidth() const { return bandwidth_; }

  private:
    std::vector<double> x_;
    std::vector<double> y_;
    double bandwidth_;
};

/**
 * Convenience wrapper: smooth y over x and return the fitted curve.
 */
std::vector<double> kernelSmooth(std::span<const double> x,
                                 std::span<const double> y,
                                 double bandwidth = 0.0);

} // namespace pentimento::util

#endif // PENTIMENTO_UTIL_KERNEL_REGRESSION_HPP
