#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace pentimento::util {

AsciiChart::AsciiChart(int width, int height)
    : width_(width), height_(height)
{
    if (width_ < 8 || height_ < 3) {
        throw std::invalid_argument("AsciiChart: canvas too small");
    }
}

void
AsciiChart::addSeries(std::string label, char glyph,
                      std::span<const double> x, std::span<const double> y)
{
    if (x.size() != y.size()) {
        throw std::invalid_argument("AsciiChart: x/y size mismatch");
    }
    ChartSeries s;
    s.label = std::move(label);
    s.glyph = glyph;
    s.x.assign(x.begin(), x.end());
    s.y.assign(y.begin(), y.end());
    series_.push_back(std::move(s));
}

void
AsciiChart::setAxisLabels(std::string x_label, std::string y_label)
{
    x_label_ = std::move(x_label);
    y_label_ = std::move(y_label);
}

void
AsciiChart::addVerticalMarker(double x, char glyph)
{
    markers_.emplace_back(x, glyph);
}

std::string
AsciiChart::render() const
{
    double xmin = std::numeric_limits<double>::infinity();
    double xmax = -xmin;
    double ymin = xmin;
    double ymax = -xmin;
    for (const auto &s : series_) {
        for (std::size_t i = 0; i < s.x.size(); ++i) {
            xmin = std::min(xmin, s.x[i]);
            xmax = std::max(xmax, s.x[i]);
            ymin = std::min(ymin, s.y[i]);
            ymax = std::max(ymax, s.y[i]);
        }
    }
    if (!(xmin <= xmax)) {
        return "(empty chart)\n";
    }
    if (xmax == xmin) {
        xmax = xmin + 1.0;
    }
    if (ymax == ymin) {
        ymax = ymin + 1.0;
        ymin -= 1.0;
    }
    // Pad the y range slightly so extreme points do not sit on the
    // frame.
    const double ypad = 0.05 * (ymax - ymin);
    ymin -= ypad;
    ymax += ypad;

    std::vector<std::string> canvas(
        static_cast<std::size_t>(height_),
        std::string(static_cast<std::size_t>(width_), ' '));

    const auto col = [&](double x) {
        const double f = (x - xmin) / (xmax - xmin);
        int c = static_cast<int>(std::lround(f * (width_ - 1)));
        return std::clamp(c, 0, width_ - 1);
    };
    const auto row = [&](double y) {
        const double f = (y - ymin) / (ymax - ymin);
        int r = static_cast<int>(std::lround((1.0 - f) * (height_ - 1)));
        return std::clamp(r, 0, height_ - 1);
    };

    // Zero line for orientation, if zero lies within range.
    if (ymin < 0.0 && ymax > 0.0) {
        const int zr = row(0.0);
        for (int c = 0; c < width_; ++c) {
            canvas[zr][c] = '-';
        }
    }
    for (const auto &[mx, glyph] : markers_) {
        if (mx < xmin || mx > xmax) {
            continue;
        }
        const int mc = col(mx);
        for (int r = 0; r < height_; ++r) {
            canvas[r][mc] = glyph;
        }
    }
    for (const auto &s : series_) {
        for (std::size_t i = 0; i < s.x.size(); ++i) {
            canvas[row(s.y[i])][col(s.x[i])] = s.glyph;
        }
    }

    std::ostringstream out;
    if (!title_.empty()) {
        out << title_ << "\n";
    }
    char buf[32];
    for (int r = 0; r < height_; ++r) {
        const double yval =
            ymax - (ymax - ymin) * static_cast<double>(r) / (height_ - 1);
        std::snprintf(buf, sizeof(buf), "%9.2f |", yval);
        out << buf << canvas[r] << "\n";
    }
    out << std::string(10, ' ') << '+' << std::string(width_, '-') << "\n";
    std::snprintf(buf, sizeof(buf), "%-12.6g", xmin);
    std::string footer(10 + 1, ' ');
    footer += buf;
    const int pad = width_ - static_cast<int>(footer.size()) + 11 - 12;
    if (pad > 0) {
        footer += std::string(static_cast<std::size_t>(pad), ' ');
    }
    std::snprintf(buf, sizeof(buf), "%.6g", xmax);
    footer += buf;
    out << footer << "\n";
    if (!x_label_.empty() || !y_label_.empty()) {
        out << "           x: " << x_label_ << "   y: " << y_label_ << "\n";
    }
    if (!series_.empty()) {
        out << "           legend:";
        for (const auto &s : series_) {
            out << "  '" << s.glyph << "' = " << s.label;
        }
        out << "\n";
    }
    return out.str();
}

} // namespace pentimento::util
